"""Gaussian naive Bayes — one of the paper's model-selection baselines."""

from __future__ import annotations

import numpy as np

from repro.core.classifier.base import BinaryClassifier, check_training_data

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes(BinaryClassifier):
    """Per-class independent Gaussians over each feature.

    ``var_smoothing`` adds a fraction of the largest feature variance
    to every per-class variance, which keeps degenerate (constant)
    features from producing zero-variance Gaussians.
    """

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.class_prior_ = np.array([0.5, 0.5])
        self.means_ = None
        self.vars_ = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianNaiveBayes":
        X, y = check_training_data(X, y)
        n_features = X.shape[1]
        self.means_ = np.zeros((2, n_features))
        self.vars_ = np.ones((2, n_features))
        priors = np.zeros(2)
        epsilon = self.var_smoothing * max(float(X.var(axis=0).max()), 1e-12)
        for cls in (0, 1):
            rows = X[y == cls]
            priors[cls] = max(len(rows), 1)
            if len(rows) == 0:
                continue
            self.means_[cls] = rows.mean(axis=0)
            self.vars_[cls] = rows.var(axis=0) + epsilon
        self.class_prior_ = priors / priors.sum()
        return self

    def _log_likelihood(self, X: np.ndarray, cls: int) -> np.ndarray:
        mean = self.means_[cls]
        var = self.vars_[cls]
        return -0.5 * np.sum(np.log(2.0 * np.pi * var)
                             + (X - mean) ** 2 / var, axis=1)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.means_ is None:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=float)
        log_joint = np.stack([
            np.log(self.class_prior_[cls] + 1e-300)
            + self._log_likelihood(X, cls)
            for cls in (0, 1)
        ], axis=1)
        # Log-sum-exp normalisation.
        shift = log_joint.max(axis=1, keepdims=True)
        probs = np.exp(log_joint - shift)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs[:, 1]
