"""k-nearest-neighbours — a paper model-selection baseline.

Features are standardised internally (the raw feature scales differ by
orders of magnitude: label-set cardinality vs entropy vs hit-rate
fractions), and the probability estimate is the distance-weighted vote
of the k nearest training points.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier.base import (BinaryClassifier, Standardizer,
                                        check_training_data)

__all__ = ["KNearestNeighbors"]


class KNearestNeighbors(BinaryClassifier):
    """Standardised, distance-weighted k-NN."""

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._scaler = Standardizer()
        self._X = None
        self._y = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KNearestNeighbors":
        X, y = check_training_data(X, y)
        self._X = self._scaler.fit_transform(X)
        self._y = y
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._X is None:
            raise RuntimeError("classifier used before fit()")
        Xs = self._scaler.transform(np.asarray(X, dtype=float))
        k = min(self.k, len(self._X))
        out = np.empty(Xs.shape[0])
        for i, row in enumerate(Xs):
            d2 = np.sum((self._X - row) ** 2, axis=1)
            nearest = np.argpartition(d2, k - 1)[:k]
            weights = 1.0 / (np.sqrt(d2[nearest]) + 1e-9)
            out[i] = float(np.average(self._y[nearest], weights=weights))
        return out
