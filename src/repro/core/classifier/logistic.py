"""L2-regularised logistic regression — a paper model-selection baseline.

Trained by full-batch gradient descent with a fixed iteration budget;
features are standardised internally so a single learning rate works
across the heterogeneous feature scales.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier.base import (BinaryClassifier, Standardizer,
                                        check_training_data)

__all__ = ["LogisticRegressionClassifier"]


class LogisticRegressionClassifier(BinaryClassifier):
    def __init__(self, learning_rate: float = 0.5, n_iterations: int = 500,
                 l2: float = 1e-3) -> None:
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self._scaler = Standardizer()
        self.weights_ = None
        self.bias_ = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        X, y = check_training_data(X, y)
        Xs = self._scaler.fit_transform(X)
        n, d = Xs.shape
        w = np.zeros(d)
        b = 0.0
        for _ in range(self.n_iterations):
            scores = Xs @ w + b
            p = 1.0 / (1.0 + np.exp(-np.clip(scores, -35, 35)))
            error = p - y
            grad_w = Xs.T @ error / n + self.l2 * w
            grad_b = float(error.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weights_ = w
        self.bias_ = b
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("classifier used before fit()")
        Xs = self._scaler.transform(np.asarray(X, dtype=float))
        scores = Xs @ self.weights_ + self.bias_
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -35, 35)))
