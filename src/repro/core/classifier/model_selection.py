"""Model selection: stratified k-fold CV, ROC curves, accuracy metrics.

Reproduces the evaluation protocol of Section V-C: standard 10-fold
cross-validation over the labeled zones, an ROC curve for the
disposable class (Figure 12), and operating points at the θ = 0.5 and
θ = 0.9 thresholds the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.classifier.base import BinaryClassifier

__all__ = [
    "ConfusionCounts",
    "RocCurve",
    "CrossValidationResult",
    "stratified_kfold_indices",
    "cross_validate",
    "roc_curve",
    "evaluate_classifiers",
]


@dataclass(frozen=True)
class ConfusionCounts:
    """Binary confusion-matrix counts at one threshold."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def true_positive_rate(self) -> float:
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def false_positive_rate(self) -> float:
        denom = self.fp + self.tn
        return self.fp / denom if denom else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.tn + self.fn
        return (self.tp + self.tn) / total if total else 0.0

    @property
    def precision(self) -> float:
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0


@dataclass
class RocCurve:
    """ROC points ordered by descending threshold."""

    thresholds: np.ndarray
    tpr: np.ndarray
    fpr: np.ndarray

    def auc(self) -> float:
        """Area under the curve by trapezoidal rule over FPR."""
        order = np.argsort(self.fpr, kind="stable")
        integrate = getattr(np, "trapezoid", None) or np.trapz
        return float(integrate(self.tpr[order], self.fpr[order]))

    def operating_point(self, threshold: float) -> Tuple[float, float]:
        """(TPR, FPR) at the smallest curve threshold >= ``threshold``."""
        eligible = self.thresholds >= threshold
        if not eligible.any():
            return 0.0, 0.0
        idx = int(np.nonzero(eligible)[0][-1])
        return float(self.tpr[idx]), float(self.fpr[idx])


@dataclass
class CrossValidationResult:
    """Pooled out-of-fold scores and derived metrics."""

    y_true: np.ndarray
    y_score: np.ndarray
    fold_ids: np.ndarray

    def confusion_at(self, threshold: float) -> ConfusionCounts:
        return confusion_at(self.y_true, self.y_score, threshold)

    def roc(self) -> RocCurve:
        return roc_curve(self.y_true, self.y_score)

    def auc(self) -> float:
        return self.roc().auc()


def confusion_at(y_true: np.ndarray, y_score: np.ndarray,
                 threshold: float) -> ConfusionCounts:
    y_true = np.asarray(y_true, dtype=int)
    predicted = np.asarray(y_score, dtype=float) >= threshold
    tp = int(np.sum(predicted & (y_true == 1)))
    fp = int(np.sum(predicted & (y_true == 0)))
    tn = int(np.sum(~predicted & (y_true == 0)))
    fn = int(np.sum(~predicted & (y_true == 1)))
    return ConfusionCounts(tp=tp, fp=fp, tn=tn, fn=fn)


def stratified_kfold_indices(y: np.ndarray, n_folds: int,
                             seed: int = 0) -> List[np.ndarray]:
    """Indices of each fold, preserving class balance per fold."""
    y = np.asarray(y, dtype=int)
    if n_folds < 2:
        raise ValueError(f"n_folds must be >= 2, got {n_folds}")
    rng = np.random.default_rng(seed)
    folds: List[List[int]] = [[] for _ in range(n_folds)]
    for cls in np.unique(y):
        members = np.nonzero(y == cls)[0]
        rng.shuffle(members)
        for i, index in enumerate(members):
            folds[i % n_folds].append(int(index))
    return [np.array(sorted(fold), dtype=int) for fold in folds]


def cross_validate(make_classifier: Callable[[], BinaryClassifier],
                   X: np.ndarray, y: np.ndarray, n_folds: int = 10,
                   seed: int = 0) -> CrossValidationResult:
    """Standard stratified k-fold CV; returns pooled out-of-fold scores."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    folds = stratified_kfold_indices(y, n_folds, seed=seed)
    scores = np.zeros(len(y))
    fold_ids = np.zeros(len(y), dtype=int)
    for fold_index, test_idx in enumerate(folds):
        if len(test_idx) == 0:
            continue
        mask = np.ones(len(y), dtype=bool)
        mask[test_idx] = False
        model = make_classifier()
        model.fit(X[mask], y[mask])
        scores[test_idx] = model.predict_proba(X[test_idx])
        fold_ids[test_idx] = fold_index
    return CrossValidationResult(y_true=y, y_score=scores, fold_ids=fold_ids)


def roc_curve(y_true: np.ndarray, y_score: np.ndarray) -> RocCurve:
    """ROC over all distinct score thresholds, descending."""
    y_true = np.asarray(y_true, dtype=int)
    y_score = np.asarray(y_score, dtype=float)
    order = np.argsort(-y_score, kind="stable")
    sorted_scores = y_score[order]
    sorted_truth = y_true[order]
    n_pos = max(int(sorted_truth.sum()), 1)
    n_neg = max(int((1 - sorted_truth).sum()), 1)

    tps = np.cumsum(sorted_truth)
    fps = np.cumsum(1 - sorted_truth)
    # Keep the last index of each score plateau.
    keep = np.nonzero(np.append(np.diff(sorted_scores) != 0, True))[0]
    thresholds = sorted_scores[keep]
    tpr = tps[keep] / n_pos
    fpr = fps[keep] / n_neg
    # Prepend the (0, 0) point at threshold just above the max score.
    thresholds = np.concatenate([[thresholds[0] + 1e-9], thresholds])
    tpr = np.concatenate([[0.0], tpr])
    fpr = np.concatenate([[0.0], fpr])
    return RocCurve(thresholds=thresholds, tpr=tpr, fpr=fpr)


def evaluate_classifiers(
        candidates: Dict[str, Callable[[], BinaryClassifier]],
        X: np.ndarray, y: np.ndarray, n_folds: int = 10,
        seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Run CV for each candidate; return per-model summary metrics.

    This is the paper's model-selection step over {LAD tree, naive
    Bayes, k-NN, neural network, logistic regression}.
    """
    summary: Dict[str, Dict[str, float]] = {}
    for name, factory in candidates.items():
        result = cross_validate(factory, X, y, n_folds=n_folds, seed=seed)
        at_default = result.confusion_at(0.5)
        at_strict = result.confusion_at(0.9)
        summary[name] = {
            "auc": result.auc(),
            "tpr@0.5": at_default.true_positive_rate,
            "fpr@0.5": at_default.false_positive_rate,
            "tpr@0.9": at_strict.true_positive_rate,
            "fpr@0.9": at_strict.false_positive_rate,
            "accuracy@0.5": at_default.accuracy,
        }
    return summary
