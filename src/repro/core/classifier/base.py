"""Shared classifier interface and feature standardisation.

All learners implement the same minimal surface — ``fit(X, y)`` with
``y`` in {0, 1} (1 = disposable) and ``predict_proba(X)`` returning
P(disposable) per row — so the miner and the model-selection harness
can treat them interchangeably, as the paper's WEKA pipeline did.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["BinaryClassifier", "Standardizer", "check_training_data"]


def check_training_data(X: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce a training set."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=int)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1 or y.shape[0] != X.shape[0]:
        raise ValueError(
            f"y must be 1-D with len(X) rows, got {y.shape} vs {X.shape}")
    if X.shape[0] == 0:
        raise ValueError("empty training set")
    bad = set(np.unique(y)) - {0, 1}
    if bad:
        raise ValueError(f"labels must be 0/1, found {sorted(bad)}")
    return X, y


class BinaryClassifier:
    """Interface for binary (disposable vs non-disposable) classifiers."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BinaryClassifier":
        raise NotImplementedError

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(class = 1) for each row of ``X``."""
        raise NotImplementedError

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(int)

    def classify(self, x: np.ndarray) -> Tuple[float, str]:
        """The paper's ``C(G_k) = (p, class)`` form for one vector.

        Returns the confidence of the *predicted* class, together with
        the class name (``"disposable"`` or ``"non-disposable"``).
        """
        p = float(self.predict_proba(np.asarray(x, dtype=float).reshape(1, -1))[0])
        if p >= 0.5:
            return p, "disposable"
        return 1.0 - p, "non-disposable"


class Standardizer:
    """Column-wise (x - mean) / std scaling with constant-column safety."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "Standardizer":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0.0] = 1.0
        self.std_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("Standardizer used before fit()")
        return (np.asarray(X, dtype=float) - self.mean_) / self.std_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)
