"""Small feed-forward neural network — a paper model-selection baseline.

One tanh hidden layer trained by full-batch gradient descent on the
logistic loss.  Initialisation uses a seeded NumPy generator so results
are reproducible across runs.
"""

from __future__ import annotations

import numpy as np

from repro.core.classifier.base import (BinaryClassifier, Standardizer,
                                        check_training_data)

__all__ = ["NeuralNetworkClassifier"]


class NeuralNetworkClassifier(BinaryClassifier):
    def __init__(self, hidden_units: int = 16, learning_rate: float = 0.1,
                 n_iterations: int = 800, l2: float = 1e-4, seed: int = 7) -> None:
        if hidden_units < 1:
            raise ValueError(f"hidden_units must be >= 1, got {hidden_units}")
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2 = l2
        self.seed = seed
        self._scaler = Standardizer()
        self._params = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NeuralNetworkClassifier":
        X, y = check_training_data(X, y)
        Xs = self._scaler.fit_transform(X)
        n, d = Xs.shape
        rng = np.random.default_rng(self.seed)
        W1 = rng.normal(0.0, 1.0 / np.sqrt(d), size=(d, self.hidden_units))
        b1 = np.zeros(self.hidden_units)
        W2 = rng.normal(0.0, 1.0 / np.sqrt(self.hidden_units),
                        size=self.hidden_units)
        b2 = 0.0

        for _ in range(self.n_iterations):
            hidden = np.tanh(Xs @ W1 + b1)
            scores = hidden @ W2 + b2
            p = 1.0 / (1.0 + np.exp(-np.clip(scores, -35, 35)))
            delta_out = (p - y) / n                    # dL/dscores
            grad_W2 = hidden.T @ delta_out + self.l2 * W2
            grad_b2 = float(delta_out.sum())
            delta_hidden = np.outer(delta_out, W2) * (1.0 - hidden ** 2)
            grad_W1 = Xs.T @ delta_hidden + self.l2 * W1
            grad_b1 = delta_hidden.sum(axis=0)
            W1 -= self.learning_rate * grad_W1
            b1 -= self.learning_rate * grad_b1
            W2 -= self.learning_rate * grad_W2
            b2 -= self.learning_rate * grad_b2

        self._params = (W1, b1, W2, b2)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise RuntimeError("classifier used before fit()")
        W1, b1, W2, b2 = self._params
        Xs = self._scaler.transform(np.asarray(X, dtype=float))
        hidden = np.tanh(Xs @ W1 + b1)
        scores = hidden @ W2 + b2
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -35, 35)))
