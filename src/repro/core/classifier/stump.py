"""Weighted regression stumps — the base learner for the LAD tree.

A stump splits one feature at one threshold and predicts a constant on
each side.  Fitting minimises *weighted squared error* against a real-
valued working response, which is exactly what each LogitBoost round
requires.  Candidate thresholds are the midpoints between consecutive
distinct feature values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["RegressionStump"]


@dataclass
class RegressionStump:
    """feature index + threshold + left/right constants."""

    feature: int = 0
    threshold: float = 0.0
    left_value: float = 0.0   # predicted when x[feature] <= threshold
    right_value: float = 0.0  # predicted when x[feature] >  threshold

    def fit(self, X: np.ndarray, z: np.ndarray,
            w: Optional[np.ndarray] = None,
            max_candidates: int = 64) -> "RegressionStump":
        """Fit to working response ``z`` with sample weights ``w``.

        ``max_candidates`` caps the thresholds tried per feature (an
        even quantile subsample) to keep boosting rounds cheap on
        larger training sets.
        """
        X = np.asarray(X, dtype=float)
        z = np.asarray(z, dtype=float)
        n, n_features = X.shape
        if w is None:
            w = np.ones(n)
        else:
            w = np.asarray(w, dtype=float)
        total_w = w.sum()
        if total_w <= 0:
            raise ValueError("sample weights sum to zero")

        best_err = np.inf
        overall_mean = float(np.average(z, weights=w))
        best = (0, -np.inf, overall_mean, overall_mean)

        for j in range(n_features):
            col = X[:, j]
            order = np.argsort(col, kind="stable")
            col_sorted = col[order]
            z_sorted = z[order]
            w_sorted = w[order]

            # Prefix sums let every split be evaluated in O(1).
            cw = np.cumsum(w_sorted)
            cwz = np.cumsum(w_sorted * z_sorted)
            cwz2 = np.cumsum(w_sorted * z_sorted * z_sorted)

            distinct = np.nonzero(np.diff(col_sorted) > 0)[0]
            if distinct.size == 0:
                continue
            if distinct.size > max_candidates:
                pick = np.linspace(0, distinct.size - 1, max_candidates)
                distinct = distinct[pick.astype(int)]

            for i in distinct:
                wl = cw[i]
                wr = cw[-1] - wl
                if wl <= 0 or wr <= 0:
                    continue
                sl, sr = cwz[i], cwz[-1] - cwz[i]
                ql, qr = cwz2[i], cwz2[-1] - cwz2[i]
                # Weighted SSE of constant fits on each side.
                err = (ql - sl * sl / wl) + (qr - sr * sr / wr)
                if err < best_err - 1e-12:
                    best_err = err
                    threshold = 0.5 * (col_sorted[i] + col_sorted[i + 1])
                    best = (j, threshold, sl / wl, sr / wr)

        self.feature, self.threshold, self.left_value, self.right_value = best
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        out = np.where(X[:, self.feature] <= self.threshold,
                       self.left_value, self.right_value)
        return out.astype(float)
