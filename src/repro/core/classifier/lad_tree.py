"""LAD tree: LogitBoost over regression stumps.

The paper's model selection picked WEKA's *LAD tree* — a LogitBoost
Alternating Decision tree (Holmes et al., 2002), which grows an
additive model of decision-stump predictors by LogitBoost.  We
implement the binary LogitBoost algorithm (Friedman, Hastie &
Tibshirani, 2000) with regression stumps as the base learners; the sum
of fitted stumps is exactly the alternating-decision-tree additive
model for the two-class case.

Each round t:

    p_i     = 1 / (1 + exp(-2 F(x_i)))
    w_i     = max(p_i (1 - p_i), eps)
    z_i     = (y*_i - p_i) / w_i            (y* in {0, 1})
    f_t     = weighted-least-squares stump on (X, z, w)
    F      += 0.5 * f_t  (clipped working responses keep F stable)
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.classifier.base import BinaryClassifier, check_training_data
from repro.core.classifier.stump import RegressionStump

__all__ = ["LadTreeClassifier"]


class LadTreeClassifier(BinaryClassifier):
    """LogitBoost additive stump ensemble (binary LAD tree).

    Parameters
    ----------
    n_rounds:
        Boosting iterations (number of stumps).
    z_clip:
        Working responses are clipped to ``[-z_clip, z_clip]``; the
        standard LogitBoost stabilisation (value 4 per FHT 2000).
    weight_floor:
        Lower bound on per-sample boosting weights.
    """

    def __init__(self, n_rounds: int = 30, z_clip: float = 4.0,
                 weight_floor: float = 1e-6) -> None:
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1, got {n_rounds}")
        self.n_rounds = n_rounds
        self.z_clip = z_clip
        self.weight_floor = weight_floor
        self.stumps_: List[RegressionStump] = []
        self.prior_f_: float = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LadTreeClassifier":
        X, y = check_training_data(X, y)
        n = X.shape[0]
        # Start from the class prior (half log-odds, since p uses 2F).
        pos = max(y.mean(), 1e-6)
        pos = min(pos, 1 - 1e-6)
        self.prior_f_ = 0.5 * 0.5 * np.log(pos / (1 - pos))
        F = np.full(n, self.prior_f_)
        self.stumps_ = []

        for _ in range(self.n_rounds):
            p = 1.0 / (1.0 + np.exp(-2.0 * F))
            w = np.maximum(p * (1.0 - p), self.weight_floor)
            z = (y - p) / w
            z = np.clip(z, -self.z_clip, self.z_clip)
            stump = RegressionStump().fit(X, z, w)
            self.stumps_.append(stump)
            F = F + 0.5 * stump.predict(X)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """The additive score F(x)."""
        if not self.stumps_:
            raise RuntimeError("classifier used before fit()")
        X = np.asarray(X, dtype=float)
        F = np.full(X.shape[0], self.prior_f_)
        for stump in self.stumps_:
            F = F + 0.5 * stump.predict(X)
        return F

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        F = self.decision_function(X)
        return 1.0 / (1.0 + np.exp(-2.0 * F))
