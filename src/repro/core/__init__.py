"""The paper's primary contribution: the disposable-zone mining system."""

from repro.core.crossnetwork import (CrossNetworkReport, ZoneConsensus,
                                     compare_networks)
from repro.core.dnstypes import RCode, RRType
from repro.core.features import FEATURE_NAMES, FeatureExtractor, GroupFeatures
from repro.core.hitrate import (HitRateTable, RRHitRate, compute_hit_rates,
                                hit_rates_from_digest)
from repro.core.interning import (DayDigest, NameTable, StreamColumns,
                                  build_day_digest)
from repro.core.labeling import LabeledZone, TrainingSet, build_training_set
from repro.core.miner import (DisposableZoneFinding, DisposableZoneMiner,
                              MinerConfig)
from repro.core.mining_pipeline import (CalendarMiner, MinerResultCache,
                                        mine_day, miner_result_key)
from repro.core.names import labels, nld, normalize, shannon_entropy
from repro.core.numeric import approx_eq, is_zero
from repro.core.profile import (GroupProfile, ZoneProfile, ZoneProfiler,
                                lad_tree_attribution)
from repro.core.streaming import (StreamingDayBuilder, StreamStats,
                                  mine_stream)
from repro.core.ranking import (DailyMiningResult, DisposableZoneRanker,
                                build_tree_for_day, build_tree_from_digest,
                                name_matches_groups)
from repro.core.records import FpDnsDataset, FpDnsEntry, RpDnsEntry, RRKey
from repro.core.suffix import SuffixList, default_suffix_list
from repro.core.tracking import TrackedZone, ZoneTracker
from repro.core.tree import DomainNameTree, TreeNode

__all__ = [
    "CrossNetworkReport", "ZoneConsensus", "compare_networks",
    "RCode", "RRType",
    "FEATURE_NAMES", "FeatureExtractor", "GroupFeatures",
    "FpDnsDataset", "FpDnsEntry", "RpDnsEntry", "RRKey",
    "HitRateTable", "RRHitRate", "compute_hit_rates",
    "hit_rates_from_digest",
    "DayDigest", "NameTable", "StreamColumns", "build_day_digest",
    "LabeledZone", "TrainingSet", "build_training_set",
    "DisposableZoneFinding", "DisposableZoneMiner", "MinerConfig",
    "CalendarMiner", "MinerResultCache", "mine_day", "miner_result_key",
    "labels", "nld", "normalize", "shannon_entropy",
    "approx_eq", "is_zero",
    "GroupProfile", "ZoneProfile", "ZoneProfiler", "lad_tree_attribution",
    "StreamingDayBuilder", "StreamStats", "mine_stream",
    "DailyMiningResult", "DisposableZoneRanker", "build_tree_for_day",
    "build_tree_from_digest", "name_matches_groups",
    "SuffixList", "default_suffix_list",
    "TrackedZone", "ZoneTracker",
    "DomainNameTree", "TreeNode",
]
