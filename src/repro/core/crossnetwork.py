"""Cross-network comparison of disposable zones.

The paper's definition makes disposability a per-network property
("domains under a zone could be disposable in one network but not
another") and proposes, as future work, that "comparing disposable
zones among different networks can help discover globally disposable
zones" (Section IV).  This module implements that comparison: given
the miner's per-network outputs, it splits the flagged (zone, depth)
groups into *globally* disposable (flagged in at least a quorum of
networks) and *locally* disposable (an artifact of one vantage point —
e.g. unpopular CDN content that merely looks one-time locally).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Set, Tuple

__all__ = ["ZoneConsensus", "CrossNetworkReport", "compare_networks"]

GroupKey = Tuple[str, int]


@dataclass(frozen=True)
class ZoneConsensus:
    """How one (zone, depth) group looks across networks."""

    zone: str
    depth: int
    networks: Tuple[str, ...]   # networks that flagged it
    support: float              # fraction of all networks flagging it

    @property
    def group(self) -> GroupKey:
        return (self.zone, self.depth)


@dataclass
class CrossNetworkReport:
    """Partition of flagged groups by cross-network support."""

    n_networks: int
    quorum: float
    consensus: List[ZoneConsensus]

    def globally_disposable(self) -> List[ZoneConsensus]:
        return [entry for entry in self.consensus
                if entry.support >= self.quorum]

    def locally_disposable(self) -> List[ZoneConsensus]:
        return [entry for entry in self.consensus
                if entry.support < self.quorum]

    def global_groups(self) -> Set[GroupKey]:
        return {entry.group for entry in self.globally_disposable()}

    def support_of(self, zone: str, depth: int) -> float:
        for entry in self.consensus:
            if entry.group == (zone, depth):
                return entry.support
        return 0.0


def compare_networks(per_network_groups: Mapping[str, Set[GroupKey]],
                     quorum: float = 1.0) -> CrossNetworkReport:
    """Cross-tabulate miner outputs from several networks.

    Parameters
    ----------
    per_network_groups:
        Mapping from network name to the (zone, depth) groups its
        miner flagged (``DailyMiningResult.groups``).
    quorum:
        Minimum fraction of networks that must flag a group for it to
        count as *globally* disposable.  1.0 (the default) demands
        unanimity; 0.5 is a majority vote.
    """
    if not per_network_groups:
        raise ValueError("need at least one network's miner output")
    if not 0.0 < quorum <= 1.0:
        raise ValueError(f"quorum must be in (0, 1], got {quorum}")
    n_networks = len(per_network_groups)
    votes: Dict[GroupKey, List[str]] = {}
    for network, groups in per_network_groups.items():
        for group in groups:
            votes.setdefault(group, []).append(network)
    consensus = [
        ZoneConsensus(zone=zone, depth=depth,
                      networks=tuple(sorted(networks)),
                      support=len(networks) / n_networks)
        for (zone, depth), networks in sorted(votes.items())
    ]
    return CrossNetworkReport(n_networks=n_networks, quorum=quorum,
                              consensus=consensus)
