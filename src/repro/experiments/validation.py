"""Calibration validation: does a simulated trace look like the paper's?

DESIGN.md §5 lists the qualitative facts the synthetic ISP must
reproduce for the substitution to be sound.  :func:`validate_calibration`
checks each one against a simulated day (plus ground truth) and returns
a scorecard — used by the test suite as a regression net around the
workload parameters, and runnable standalone to vet custom
configurations before trusting experiment output from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

import numpy as np

from repro.analysis.chrdist import chr_cdf_for_zones
from repro.analysis.tail import LOW_VOLUME_THRESHOLD
from repro.analysis.volume import day_summary
from repro.core.hitrate import HitRateTable, compute_hit_rates
from repro.core.ranking import name_matches_groups
from repro.pdns.records import FpDnsDataset
from repro.textutil import format_table
from repro.traffic.simulate import TraceSimulator

__all__ = ["CalibrationCheck", "CalibrationScorecard",
           "validate_calibration"]


@dataclass(frozen=True)
class CalibrationCheck:
    """One paper-shape invariant and its outcome."""

    name: str
    passed: bool
    measured: float
    expectation: str


@dataclass
class CalibrationScorecard:
    day: str
    checks: List[CalibrationCheck]

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> List[CalibrationCheck]:
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        rows = [(check.name, "PASS" if check.passed else "FAIL",
                 f"{check.measured:.3f}", check.expectation)
                for check in self.checks]
        return (f"Calibration scorecard — {self.day}\n"
                + format_table(["invariant", "status", "measured",
                                "expected"], rows))


def validate_calibration(simulator: TraceSimulator,
                         dataset: FpDnsDataset,
                         hit_rates: Optional[HitRateTable] = None
                         ) -> CalibrationScorecard:
    """Check the DESIGN.md §5 invariants on one simulated day."""
    if hit_rates is None:
        hit_rates = compute_hit_rates(dataset)
    truth = simulator.disposable_truth()
    volumes = day_summary(dataset)
    checks: List[CalibrationCheck] = []

    def check(name: str, measured: float, passed: bool,
              expectation: str) -> None:
        checks.append(CalibrationCheck(name=name, passed=bool(passed),
                                       measured=float(measured),
                                       expectation=expectation))

    # 1. Less traffic above than below.
    ratio = volumes.above_below_ratio
    check("above/below volume ratio", ratio, ratio < 0.8, "< 0.8")

    # 2. NXDOMAIN concentrates upstream.
    check("NXDOMAIN share above vs below",
          (volumes.nxdomain_share_above
           / max(volumes.nxdomain_share_below, 1e-9)),
          volumes.nxdomain_share_above
          > 1.2 * volumes.nxdomain_share_below, "> 1.2x")

    # 3. NXDOMAIN small below.
    check("NXDOMAIN share below", volumes.nxdomain_share_below,
          volumes.nxdomain_share_below < 0.12, "< 0.12")

    # 4. Google+Akamai below half of traffic.
    check("google+akamai share below", volumes.google_akamai_share_below,
          volumes.google_akamai_share_below < 0.5, "< 0.5")

    # 5. Long tail of lookup volume.
    lookups = hit_rates.lookup_counts()
    low_tail = float(np.mean(lookups < LOW_VOLUME_THRESHOLD)) \
        if lookups.size else 0.0
    check("RRs with <10 lookups", low_tail, low_tail > 0.85, "> 0.85")

    # 6. Zero-DHR long tail.
    zero_dhr = hit_rates.zero_dhr_fraction()
    check("zero-DHR RR fraction", zero_dhr, zero_dhr > 0.6, "> 0.6")

    # 7. Disposable CHR collapses at zero.
    disposable_zones = [service.zone for service in
                        simulator.population.services]
    disposable_cdf = chr_cdf_for_zones(hit_rates, disposable_zones)
    disposable_zero = disposable_cdf.at(0.0) if len(disposable_cdf) else 0.0
    check("disposable CHR == 0", disposable_zero, disposable_zero > 0.85,
          "> 0.85")

    # 8. Popular zones keep healthy hit rates.
    popular_zones = [site.zone for site in
                     simulator.population.popular_sites]
    popular_cdf = chr_cdf_for_zones(hit_rates, popular_zones)
    popular_median = popular_cdf.quantile(0.5) if len(popular_cdf) else 0.0
    check("popular median CHR", popular_median,
          popular_median > disposable_zero - 1.0
          and popular_median > 0.1, "> 0.1 and >> disposable")

    # 9. Disposable share of resolved names in the paper's band.
    resolved = dataset.resolved_domains()
    disposable_share = (sum(1 for name in resolved
                            if name_matches_groups(name, truth))
                        / len(resolved)) if resolved else 0.0
    check("disposable share of resolved names", disposable_share,
          0.1 < disposable_share < 0.6, "in (0.1, 0.6)")

    # 10. Disposable RR share exceeds disposable name share.
    rrs = dataset.distinct_rrs()
    rr_share = (sum(1 for (name, _, _) in rrs
                    if name_matches_groups(name, truth))
                / len(rrs)) if rrs else 0.0
    check("disposable RR share > name share",
          rr_share - disposable_share, rr_share > disposable_share,
          "> 0")

    return CalibrationScorecard(day=dataset.day, checks=checks)
