"""Generic parameter-sweep harness.

Several of the paper's arguments are really claims about how a
statistic moves along a knob — cache pressure vs capacity, the
above/below ratio vs query density, growth vs disposable share.  This
harness runs a fresh simulation per grid point and collects any
metrics computed from the resulting day, giving experiments and users
a uniform way to produce such curves.

Example::

    sweep = ParameterSweep(
        base=SimulatorConfig(...),
        vary=("workload.events_per_day", [8_000, 32_000, 96_000]),
        metrics={"ratio": lambda sim, day: day.above_volume()
                                           / day.below_volume()})
    result = sweep.run()
    result.series("ratio")   # [(8_000, …), (32_000, …), (96_000, …)]
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.pdns.records import FpDnsDataset
from repro.textutil import format_table
from repro.traffic.simulate import (MeasurementDate, SimulatorConfig,
                                    TraceSimulator)

__all__ = ["MetricFn", "SweepResult", "ParameterSweep", "set_config_attr"]

MetricFn = Callable[[TraceSimulator, FpDnsDataset], float]

_DEFAULT_PROBE = MeasurementDate("sweep-probe", 200, 0.7)
_DEFAULT_WARMUP = MeasurementDate("sweep-warmup", 199, 0.7)


def set_config_attr(config: SimulatorConfig, path: str, value: Any) -> None:
    """Set a dotted attribute path on a config, e.g.
    ``"workload.events_per_day"`` or ``"cache_capacity"``."""
    parts = path.split(".")
    target = config
    for part in parts[:-1]:
        target = getattr(target, part)
    if not hasattr(target, parts[-1]):
        raise AttributeError(f"no config attribute {path!r}")
    setattr(target, parts[-1], value)


@dataclass
class SweepResult:
    """Grid values and the metrics collected at each point."""

    parameter: str
    values: List[Any]
    metrics: Dict[str, List[float]]

    def series(self, metric: str) -> List[Tuple[Any, float]]:
        return list(zip(self.values, self.metrics[metric]))

    def is_monotone(self, metric: str, increasing: bool = True,
                    slack: float = 0.0) -> bool:
        """True if the metric moves monotonically along the grid."""
        series = self.metrics[metric]
        if increasing:
            return all(later >= earlier - slack
                       for earlier, later in zip(series, series[1:]))
        return all(later <= earlier + slack
                   for earlier, later in zip(series, series[1:]))

    def render(self) -> str:
        headers = [self.parameter] + sorted(self.metrics)
        rows = []
        for i, value in enumerate(self.values):
            rows.append([value] + [f"{self.metrics[name][i]:.4f}"
                                   for name in sorted(self.metrics)])
        return format_table(headers, rows)


class ParameterSweep:
    """Runs one simulated day per grid point and collects metrics."""

    def __init__(self, base: SimulatorConfig,
                 vary: Tuple[str, Sequence[Any]],
                 metrics: Dict[str, MetricFn],
                 probe_date: MeasurementDate = _DEFAULT_PROBE,
                 warmup_date: Optional[MeasurementDate] = _DEFAULT_WARMUP,
                 events_per_day: Optional[int] = None) -> None:
        if not metrics:
            raise ValueError("need at least one metric")
        self.base = base
        self.parameter, self.values = vary
        if not self.values:
            raise ValueError("need at least one grid value")
        self.metrics = dict(metrics)
        self.probe_date = probe_date
        self.warmup_date = warmup_date
        self.events_per_day = events_per_day

    def run(self) -> SweepResult:
        collected: Dict[str, List[float]] = {name: []
                                             for name in self.metrics}
        for value in self.values:
            config = copy.deepcopy(self.base)
            set_config_attr(config, self.parameter, value)
            simulator = TraceSimulator(config)
            if self.warmup_date is not None:
                simulator.run_day(self.warmup_date,
                                  n_events=self.events_per_day)
            day = simulator.run_day(self.probe_date,
                                    n_events=self.events_per_day)
            for name, metric in self.metrics.items():
                collected[name].append(float(metric(simulator, day)))
        return SweepResult(parameter=self.parameter,
                           values=list(self.values), metrics=collected)
