"""Section VI experiment runners: cache pressure, DNSSEC, pDNS storage."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_kv, format_percent, format_table
from repro.impact.cache_pressure import (CachePressureComparison,
                                         run_cache_pressure_study)
from repro.impact.dnssec_cost import DnssecStudyResult, run_dnssec_study
from repro.impact.pdns_storage import PdnsStorageResult, run_pdns_storage_study
from repro.traffic.diurnal import SECONDS_PER_DAY
from repro.traffic.simulate import RPDNS_WINDOW_DATES, MeasurementDate
from repro.traffic.workload import QueryEvent

__all__ = ["Sec6aResult", "run_sec6a_cache_pressure",
           "Sec6bResult", "run_sec6b_dnssec",
           "Sec6cResult", "run_sec6c_pdns_storage"]

_IMPACT_DATE = MeasurementDate("impact-day", 400, 0.95)


def _impact_events(ctx: ExperimentContext,
                   n_events: Optional[int] = None) -> List[QueryEvent]:
    workload = ctx.simulator.workload
    return workload.generate_day(_IMPACT_DATE.day_index,
                                 year_fraction=_IMPACT_DATE.year_fraction,
                                 n_events=n_events)


# ------------------------------------------------------------- Section VI-A

@dataclass
class Sec6aResult:
    comparisons: List[CachePressureComparison]

    def render(self) -> str:
        rows = []
        for comparison in self.comparisons:
            loaded = comparison.with_disposable
            clean = comparison.without_disposable
            rows.append((
                comparison.capacity,
                format_percent(loaded.non_disposable_hit_rate),
                format_percent(clean.non_disposable_hit_rate),
                format_percent(comparison.hit_rate_degradation, 2),
                comparison.extra_live_evictions,
                f"{loaded.mean_latency_ms:.2f}",
                f"{clean.mean_latency_ms:.2f}"))
        table = format_table(
            ["cache cap", "ND hit rate (loaded)", "ND hit rate (clean)",
             "degradation", "extra live evictions", "lat loaded ms",
             "lat clean ms"], rows)
        return ("Section VI-A — cache pressure from disposable domains\n"
                "(paper: disposable churn prematurely evicts useful records "
                "under fixed-size LRU caches; effect grows as capacity "
                "shrinks)\n" + table)

    def degradation_series(self) -> List[float]:
        return [c.hit_rate_degradation for c in self.comparisons]


def run_sec6a_cache_pressure(ctx: ExperimentContext,
                             capacities: Sequence[int] = None,
                             n_events: int = None) -> Sec6aResult:
    base = ctx.profile.cache_capacity
    if capacities is None:
        capacities = [base // 16, base // 8, base // 4, base // 2, base]
    events = _impact_events(ctx, n_events)
    day_start = _IMPACT_DATE.day_index * SECONDS_PER_DAY
    comparisons = run_cache_pressure_study(
        ctx.simulator.authority, events, capacities, day_start=day_start)
    return Sec6aResult(comparisons=comparisons)


# ------------------------------------------------------------- Section VI-B

@dataclass
class Sec6bResult:
    study: DnssecStudyResult

    def render(self) -> str:
        rows = []
        for regime, s in self.study.scenarios.items():
            rows.append((regime, s.validations, s.validations_cached,
                         format_percent(s.validation_cache_hit_rate),
                         s.disposable_validations,
                         f"{s.signature_cache_bytes / 1024:.0f} KiB"))
        table = format_table(
            ["signing regime", "validations", "cached", "val-cache hit",
             "disposable validations", "sig cache"], rows)
        notes = format_kv([
            ("wildcard mitigation savings (validations avoided)",
             format_percent(self.study.wildcard_savings())),
        ])
        return ("Section VI-B — DNSSEC validation cost\n(paper: each "
                "disposable query forces a never-reused signature "
                "validation; wildcard signing collapses them)\n"
                + table + "\n" + notes)


def run_sec6b_dnssec(ctx: ExperimentContext,
                     n_events: int = None) -> Sec6bResult:
    events = _impact_events(ctx, n_events)
    day_start = _IMPACT_DATE.day_index * SECONDS_PER_DAY
    population = ctx.simulator.population
    all_apexes = {zone.apex for zone in ctx.simulator.authority.zones()}
    disposable_apexes = {service.zone for service in population.services}
    study = run_dnssec_study(ctx.simulator.authority, events, all_apexes,
                             disposable_apexes, day_start=day_start,
                             cache_capacity=ctx.profile.cache_capacity)
    return Sec6bResult(study=study)


# ------------------------------------------------------------- Section VI-C

@dataclass
class Sec6cResult:
    result: PdnsStorageResult

    def render(self) -> str:
        first, last = self.result.first_to_last_disposable_share()
        notes = format_kv([
            ("unique RRs after window", self.result.rows_before),
            ("disposable fraction (paper: 88%)",
             format_percent(self.result.disposable_fraction)),
            ("daily new disposable share (paper: 68% -> 94%)",
             f"{format_percent(first)} -> {format_percent(last)}"),
            ("rows after wildcard aggregation",
             self.result.rows_after_wildcard),
            ("remaining fraction of whole store",
             format_percent(self.result.reduction_ratio, 2)),
            ("remaining fraction of disposable rows (paper: 0.7%)",
             format_percent(self.result.disposable_reduction_ratio, 2)),
            ("storage before"
             + (" (measured on-disk)" if self.result.bytes_measured
                else " (48 B/row model)"),
             f"{self.result.bytes_before / 1024:.0f} KiB"),
            ("storage after",
             f"{self.result.bytes_after_wildcard / 1024:.0f} KiB"),
        ])
        return ("Section VI-C — passive DNS storage\n" + notes)


def run_sec6c_pdns_storage(ctx: ExperimentContext) -> Sec6cResult:
    datasets = ctx.rpdns_window()
    groups = ctx.mined_groups(RPDNS_WINDOW_DATES[-1])
    return Sec6cResult(result=run_pdns_storage_study(
        datasets, groups, database=ctx.pdns_database()))
