"""Experiment runners: one function per paper table/figure plus the
Section VI studies and ablations.  See DESIGN.md for the full index."""

from repro.experiments.ablations import (ClassifierComparisonResult,
                                         FeatureAblationResult,
                                         ThresholdSweepResult,
                                         run_classifier_comparison,
                                         run_feature_ablation,
                                         run_threshold_sweep)
from repro.experiments.context import (MEDIUM, SMALL, TRAINING_DATE,
                                       ExperimentContext, ScaleProfile,
                                       get_context)
from repro.experiments.figures import (run_fig02_traffic_volume,
                                       run_fig03_long_tail,
                                       run_fig04_chr_distribution,
                                       run_fig05_new_rrs,
                                       run_fig07_chr_labeled,
                                       run_fig12_roc, run_fig13_growth,
                                       run_fig14_ttl,
                                       run_fig15_pdns_growth)
from repro.experiments.impact_runs import (run_sec6a_cache_pressure,
                                           run_sec6b_dnssec,
                                           run_sec6c_pdns_storage)
from repro.experiments.sweeps import ParameterSweep, SweepResult
from repro.experiments.validation import (CalibrationCheck,
                                           CalibrationScorecard,
                                           validate_calibration)
from repro.experiments.tables import (run_fig11_summary,
                                      run_table1_lookup_tail,
                                      run_table2_dhr_tail)

__all__ = [
    "ClassifierComparisonResult", "FeatureAblationResult",
    "ThresholdSweepResult", "run_classifier_comparison",
    "run_feature_ablation", "run_threshold_sweep",
    "MEDIUM", "SMALL", "TRAINING_DATE", "ExperimentContext", "ScaleProfile",
    "get_context",
    "run_fig02_traffic_volume", "run_fig03_long_tail",
    "run_fig04_chr_distribution", "run_fig05_new_rrs",
    "run_fig07_chr_labeled", "run_fig12_roc", "run_fig13_growth",
    "run_fig14_ttl", "run_fig15_pdns_growth",
    "run_sec6a_cache_pressure", "run_sec6b_dnssec", "run_sec6c_pdns_storage",
    "run_fig11_summary", "run_table1_lookup_tail", "run_table2_dhr_tail",
    "CalibrationCheck", "CalibrationScorecard", "validate_calibration",
    "ParameterSweep", "SweepResult",
]
