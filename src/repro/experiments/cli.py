"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro <experiment> [--profile small|medium]
    python -m repro list
    python -m repro cache stats [--dir DIR]
    python -m repro cache prune --max-bytes N [--dir DIR]

where ``<experiment>`` is one of the ids below (e.g. ``fig13``,
``table1``, ``sec6b``, ``all``).  Output is the same text rendering
the benchmarks print.

``cache`` inspects or LRU-prunes the on-disk artifact caches
(simulated fpDNS days and mining results; see docs/PERFORMANCE.md §5).
Without ``--dir`` it operates on the directories named by the
``REPRO_ARTIFACT_CACHE`` and ``REPRO_MINER_CACHE`` environment knobs.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.artifact_store import directory_stats, prune_directory
from repro.experiments.ablations import (run_classifier_comparison,
                                         run_feature_ablation,
                                         run_threshold_sweep)
from repro.experiments.context import (MEDIUM, SMALL, ExperimentContext,
                                       ScaleProfile, get_context)
from repro.experiments.figures import (run_fig02_traffic_volume,
                                       run_fig03_long_tail,
                                       run_fig04_chr_distribution,
                                       run_fig05_new_rrs,
                                       run_fig07_chr_labeled,
                                       run_fig12_roc, run_fig13_growth,
                                       run_fig14_ttl,
                                       run_fig15_pdns_growth)
from repro.experiments.impact_runs import (run_sec6a_cache_pressure,
                                           run_sec6b_dnssec,
                                           run_sec6c_pdns_storage)
from repro.experiments.tables import (run_fig11_summary,
                                      run_table1_lookup_tail,
                                      run_table2_dhr_tail)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS: Dict[str, Callable[[ExperimentContext], object]] = {
    "fig2": run_fig02_traffic_volume,
    "fig3": run_fig03_long_tail,
    "fig4": run_fig04_chr_distribution,
    "fig5": run_fig05_new_rrs,
    "fig7": run_fig07_chr_labeled,
    "fig11": run_fig11_summary,
    "fig12": run_fig12_roc,
    "fig13": run_fig13_growth,
    "fig14": run_fig14_ttl,
    "fig15": run_fig15_pdns_growth,
    "table1": run_table1_lookup_tail,
    "table2": run_table2_dhr_tail,
    "sec6a": run_sec6a_cache_pressure,
    "sec6b": run_sec6b_dnssec,
    "sec6c": run_sec6c_pdns_storage,
    "ablation-classifiers": run_classifier_comparison,
    "ablation-features": run_feature_ablation,
    "ablation-threshold": run_threshold_sweep,
}

_PROFILES: Dict[str, ScaleProfile] = {"small": SMALL, "medium": MEDIUM}

_CACHE_ENV_KNOBS = ("REPRO_ARTIFACT_CACHE", "REPRO_MINER_CACHE")


def _cache_directories(explicit: Optional[Sequence[str]]) -> List[Path]:
    """Directories the ``cache`` subcommand operates on: ``--dir``
    arguments if given, else the env-configured cache directories."""
    if explicit:
        return [Path(value) for value in explicit]
    directories: List[Path] = []
    for knob in _CACHE_ENV_KNOBS:
        value = os.environ.get(knob)
        if value and Path(value) not in directories:
            directories.append(Path(value))
    return directories


def _run_cache(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    action = args.action or "stats"
    if action not in ("stats", "prune"):
        parser.error(f"unknown cache action {action!r}; "
                     "expected 'stats' or 'prune'")
    directories = _cache_directories(args.cache_dirs)
    if not directories:
        parser.error("no cache directories: pass --dir or set "
                     + "/".join(_CACHE_ENV_KNOBS))
    if action == "prune":
        if args.max_bytes is None:
            parser.error("cache prune requires --max-bytes")
        for directory in directories:
            removed = prune_directory(directory, args.max_bytes)
            print(f"{directory}: pruned {len(removed)} artifacts")
        return 0
    for directory in directories:
        print(directory_stats(directory).render())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), 'calibrate', "
                             "'cache', or 'all'/'list'")
    parser.add_argument("action", nargs="?", default=None,
                        help="cache action: 'stats' (default) or 'prune'")
    parser.add_argument("--profile", choices=sorted(_PROFILES),
                        default="small",
                        help="simulation scale (default: small)")
    parser.add_argument("--dir", dest="cache_dirs", action="append",
                        metavar="DIR",
                        help="cache directory for 'cache' (repeatable; "
                             "default: the REPRO_*_CACHE env knobs)")
    parser.add_argument("--max-bytes", type=int, default=None,
                        help="byte budget for 'cache prune'")
    args = parser.parse_args(argv)

    if args.experiment == "cache":
        return _run_cache(args, parser)
    if args.action is not None:
        parser.error(f"unexpected argument {args.action!r} "
                     f"for {args.experiment!r}")

    if args.experiment == "calibrate":
        from repro.experiments.validation import validate_calibration
        from repro.traffic.simulate import PAPER_DATES

        context = get_context(_PROFILES[args.profile])
        date = PAPER_DATES[-1]
        scorecard = validate_calibration(context.simulator,
                                         context.dataset(date),
                                         context.hit_rates(date))
        print(scorecard.render())
        return 0 if scorecard.all_passed else 1

    if args.experiment == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  calibrate   (validation scorecard; exit 1 on failure)")
        print("  cache       (artifact-cache stats/prune; "
              "--dir / --max-bytes)")
        return 0

    if args.experiment == "all":
        names = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        parser.error(f"unknown experiment {args.experiment!r}; "
                     "use 'list' to see the catalogue")
        return 2  # pragma: no cover - parser.error raises

    context = get_context(_PROFILES[args.profile])
    for name in names:
        result = EXPERIMENTS[name](context)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
