"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro <experiment> [--profile small|medium]
    python -m repro list

where ``<experiment>`` is one of the ids below (e.g. ``fig13``,
``table1``, ``sec6b``, ``all``).  Output is the same text rendering
the benchmarks print.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.experiments.ablations import (run_classifier_comparison,
                                         run_feature_ablation,
                                         run_threshold_sweep)
from repro.experiments.context import (MEDIUM, SMALL, ExperimentContext,
                                       ScaleProfile, get_context)
from repro.experiments.figures import (run_fig02_traffic_volume,
                                       run_fig03_long_tail,
                                       run_fig04_chr_distribution,
                                       run_fig05_new_rrs,
                                       run_fig07_chr_labeled,
                                       run_fig12_roc, run_fig13_growth,
                                       run_fig14_ttl,
                                       run_fig15_pdns_growth)
from repro.experiments.impact_runs import (run_sec6a_cache_pressure,
                                           run_sec6b_dnssec,
                                           run_sec6c_pdns_storage)
from repro.experiments.tables import (run_fig11_summary,
                                      run_table1_lookup_tail,
                                      run_table2_dhr_tail)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS: Dict[str, Callable[[ExperimentContext], object]] = {
    "fig2": run_fig02_traffic_volume,
    "fig3": run_fig03_long_tail,
    "fig4": run_fig04_chr_distribution,
    "fig5": run_fig05_new_rrs,
    "fig7": run_fig07_chr_labeled,
    "fig11": run_fig11_summary,
    "fig12": run_fig12_roc,
    "fig13": run_fig13_growth,
    "fig14": run_fig14_ttl,
    "fig15": run_fig15_pdns_growth,
    "table1": run_table1_lookup_tail,
    "table2": run_table2_dhr_tail,
    "sec6a": run_sec6a_cache_pressure,
    "sec6b": run_sec6b_dnssec,
    "sec6c": run_sec6c_pdns_storage,
    "ablation-classifiers": run_classifier_comparison,
    "ablation-features": run_feature_ablation,
    "ablation-threshold": run_threshold_sweep,
}

_PROFILES: Dict[str, ScaleProfile] = {"small": SMALL, "medium": MEDIUM}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), 'calibrate', or 'all'/'list'")
    parser.add_argument("--profile", choices=sorted(_PROFILES),
                        default="small",
                        help="simulation scale (default: small)")
    args = parser.parse_args(argv)

    if args.experiment == "calibrate":
        from repro.experiments.validation import validate_calibration
        from repro.traffic.simulate import PAPER_DATES

        context = get_context(_PROFILES[args.profile])
        date = PAPER_DATES[-1]
        scorecard = validate_calibration(context.simulator,
                                         context.dataset(date),
                                         context.hit_rates(date))
        print(scorecard.render())
        return 0 if scorecard.all_passed else 1

    if args.experiment == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  calibrate   (validation scorecard; exit 1 on failure)")
        return 0

    if args.experiment == "all":
        names = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        parser.error(f"unknown experiment {args.experiment!r}; "
                     "use 'list' to see the catalogue")
        return 2  # pragma: no cover - parser.error raises

    context = get_context(_PROFILES[args.profile])
    for name in names:
        result = EXPERIMENTS[name](context)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
