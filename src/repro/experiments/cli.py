"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro <experiment> [--profile small|medium]
    python -m repro list
    python -m repro cache stats [--dir DIR]
    python -m repro cache prune --max-bytes N [--dir DIR]
    python -m repro serve [--host H] [--port P] [--profile small|medium]

where ``<experiment>`` is one of the ids below (e.g. ``fig13``,
``table1``, ``sec6b``, ``all``).  Output is the same text rendering
the benchmarks print.

``cache`` inspects or LRU-prunes the on-disk artifact caches
(simulated fpDNS days and mining results; see docs/PERFORMANCE.md §5).
Without ``--dir`` it operates on the directories named by the
``REPRO_ARTIFACT_CACHE`` and ``REPRO_MINER_CACHE`` environment knobs.

``pdns`` operates on segmented on-disk pdns stores
(:mod:`repro.pdns.store`; docs/PERFORMANCE.md §8): ``stats`` prints
segment counts/bytes and prefilter counters, ``compact`` k-way-merges
segments (``--max-rows`` limits merging to small segments), and
``prune`` destructively drops oldest segments to a ``--max-bytes``
budget.  Without ``--dir`` it uses the ``REPRO_PDNS_STORE`` knob.

``serve`` starts the long-running classification daemon
(:mod:`repro.service`; see docs/PERFORMANCE.md §7): it simulates or
cache-loads the reference day, trains (or loads, with ``--model``)
the LAD tree, and answers ``POST /classify`` / ``GET /metrics`` /
``GET /healthz`` until interrupted.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.artifact_store import directory_stats, prune_directory
from repro.experiments.ablations import (run_classifier_comparison,
                                         run_feature_ablation,
                                         run_threshold_sweep)
from repro.experiments.context import (MEDIUM, SMALL, ExperimentContext,
                                       ScaleProfile, get_context)
from repro.experiments.figures import (run_fig02_traffic_volume,
                                       run_fig03_long_tail,
                                       run_fig04_chr_distribution,
                                       run_fig05_new_rrs,
                                       run_fig07_chr_labeled,
                                       run_fig12_roc, run_fig13_growth,
                                       run_fig14_ttl,
                                       run_fig15_pdns_growth)
from repro.experiments.impact_runs import (run_sec6a_cache_pressure,
                                           run_sec6b_dnssec,
                                           run_sec6c_pdns_storage)
from repro.experiments.tables import (run_fig11_summary,
                                      run_table1_lookup_tail,
                                      run_table2_dhr_tail)

__all__ = ["EXPERIMENTS", "main"]

EXPERIMENTS: Dict[str, Callable[[ExperimentContext], object]] = {
    "fig2": run_fig02_traffic_volume,
    "fig3": run_fig03_long_tail,
    "fig4": run_fig04_chr_distribution,
    "fig5": run_fig05_new_rrs,
    "fig7": run_fig07_chr_labeled,
    "fig11": run_fig11_summary,
    "fig12": run_fig12_roc,
    "fig13": run_fig13_growth,
    "fig14": run_fig14_ttl,
    "fig15": run_fig15_pdns_growth,
    "table1": run_table1_lookup_tail,
    "table2": run_table2_dhr_tail,
    "sec6a": run_sec6a_cache_pressure,
    "sec6b": run_sec6b_dnssec,
    "sec6c": run_sec6c_pdns_storage,
    "ablation-classifiers": run_classifier_comparison,
    "ablation-features": run_feature_ablation,
    "ablation-threshold": run_threshold_sweep,
}

_PROFILES: Dict[str, ScaleProfile] = {"small": SMALL, "medium": MEDIUM}

_CACHE_ENV_KNOBS = ("REPRO_ARTIFACT_CACHE", "REPRO_MINER_CACHE")

_PDNS_ENV_KNOB = "REPRO_PDNS_STORE"


def _cache_directories(explicit: Optional[Sequence[str]]) -> List[Path]:
    """Directories the ``cache`` subcommand operates on: ``--dir``
    arguments if given, else the env-configured cache directories."""
    if explicit:
        return [Path(value) for value in explicit]
    directories: List[Path] = []
    for knob in _CACHE_ENV_KNOBS:
        value = os.environ.get(knob)
        if value and Path(value) not in directories:
            directories.append(Path(value))
    return directories


def _run_cache(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    action = args.action or "stats"
    if action not in ("stats", "prune"):
        parser.error(f"unknown cache action {action!r}; "
                     "expected 'stats' or 'prune'")
    directories = _cache_directories(args.cache_dirs)
    if not directories:
        parser.error("no cache directories: pass --dir or set "
                     + "/".join(_CACHE_ENV_KNOBS))
    if action == "prune":
        if args.max_bytes is None:
            parser.error("cache prune requires --max-bytes")
        for directory in directories:
            removed = prune_directory(directory, args.max_bytes)
            print(f"{directory}: pruned {len(removed)} artifacts")
        return 0
    for directory in directories:
        print(directory_stats(directory).render())
    return 0


def _run_pdns(args: argparse.Namespace,
              parser: argparse.ArgumentParser) -> int:
    """The ``pdns`` subcommand: segmented-store stats/compact/prune."""
    from repro.pdns.store import SegmentedPdnsStore

    action = args.action or "stats"
    if action not in ("stats", "compact", "prune"):
        parser.error(f"unknown pdns action {action!r}; "
                     "expected 'stats', 'compact' or 'prune'")
    if args.cache_dirs:
        directories = [Path(value) for value in args.cache_dirs]
    else:
        env_value = os.environ.get(_PDNS_ENV_KNOB)
        directories = [Path(env_value)] if env_value else []
    if not directories:
        parser.error(f"no store directories: pass --dir or set "
                     f"{_PDNS_ENV_KNOB}")
    if action == "prune" and args.max_bytes is None:
        parser.error("pdns prune requires --max-bytes")
    for directory in directories:
        store = SegmentedPdnsStore(directory, on_corrupt="skip")
        if action == "compact":
            print(f"{directory}: {store.compact(args.max_rows).render()}")
        elif action == "prune":
            removed = store.prune(args.max_bytes)
            print(f"{directory}: pruned {len(removed)} segments")
        else:
            print(store.stats().render())
        for _, error in store.corrupt_segments():
            print(f"  corrupt segment skipped: {error}")
    return 0


def _run_serve(argv: Sequence[str]) -> int:
    """The ``serve`` subcommand: stand up the classification daemon."""
    from repro.service.app import PROFILES, ServeSettings, build_server

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Serve online disposable-domain verdicts over HTTP.")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8053,
                        help="bind port; 0 picks an ephemeral port "
                             "(default: 8053)")
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default="small",
                        help="simulation scale for the reference day "
                             "(default: small)")
    parser.add_argument("--model", default=None, metavar="PATH",
                        help="load a persisted LAD-tree model instead of "
                             "training (stump or compiled JSON form)")
    parser.add_argument("--threshold", type=float, default=0.9,
                        help="disposable probability threshold θ "
                             "(default: 0.9)")
    parser.add_argument("--min-group-size", type=int, default=5,
                        help="smallest classifiable depth group "
                             "(default: 5)")
    parser.add_argument("--cache-size", type=int, default=4096,
                        help="verdict-cache capacity in (zone, depth) "
                             "entries (default: 4096)")
    parser.add_argument("--max-batch", type=int, default=512,
                        help="qnames per coalesced engine call "
                             "(default: 512)")
    parser.add_argument("--batch-window-ms", type=float, default=2.0,
                        help="micro-batching window in milliseconds "
                             "(default: 2.0)")
    args = parser.parse_args(argv)

    settings = ServeSettings(
        host=args.host, port=args.port, profile=args.profile,
        model_path=args.model, threshold=args.threshold,
        min_group_size=args.min_group_size, cache_size=args.cache_size,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window_ms / 1000.0)
    print(f"preparing engine (profile={settings.profile}, "
          f"model={settings.model_path or 'trained in-process'}) ...")
    server = build_server(settings)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} "
          "(POST /classify, GET /metrics, GET /healthz; Ctrl-C to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.batcher.close()
        server.server_close()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "serve":
        # ``serve`` takes daemon flags the experiment parser does not
        # know; dispatch before it can reject them.
        return _run_serve(arguments[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("experiment",
                        help="experiment id (see 'list'), 'calibrate', "
                             "'cache', 'pdns', 'serve', or 'all'/'list'")
    parser.add_argument("action", nargs="?", default=None,
                        help="cache action ('stats'/'prune') or pdns "
                             "action ('stats'/'compact'/'prune')")
    parser.add_argument("--profile", choices=sorted(_PROFILES),
                        default="small",
                        help="simulation scale (default: small)")
    parser.add_argument("--dir", dest="cache_dirs", action="append",
                        metavar="DIR",
                        help="cache/store directory for 'cache'/'pdns' "
                             "(repeatable; default: the REPRO_*_CACHE / "
                             "REPRO_PDNS_STORE env knobs)")
    parser.add_argument("--max-bytes", type=int, default=None,
                        help="byte budget for 'cache prune'/'pdns prune'")
    parser.add_argument("--max-rows", type=int, default=None,
                        help="only merge segments at most this big "
                             "for 'pdns compact' (default: merge all)")
    args = parser.parse_args(arguments)

    if args.experiment == "cache":
        return _run_cache(args, parser)
    if args.experiment == "pdns":
        return _run_pdns(args, parser)
    if args.action is not None:
        parser.error(f"unexpected argument {args.action!r} "
                     f"for {args.experiment!r}")

    if args.experiment == "calibrate":
        from repro.experiments.validation import validate_calibration
        from repro.traffic.simulate import PAPER_DATES

        context = get_context(_PROFILES[args.profile])
        date = PAPER_DATES[-1]
        scorecard = validate_calibration(context.simulator,
                                         context.dataset(date),
                                         context.hit_rates(date))
        print(scorecard.render())
        return 0 if scorecard.all_passed else 1

    if args.experiment == "list":
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  calibrate   (validation scorecard; exit 1 on failure)")
        print("  cache       (artifact-cache stats/prune; "
              "--dir / --max-bytes)")
        print("  pdns        (segmented-store stats/compact/prune; "
              "--dir / --max-rows / --max-bytes)")
        print("  serve       (classification daemon; "
              "--host / --port / --model)")
        return 0

    if args.experiment == "all":
        names = list(EXPERIMENTS)
    elif args.experiment in EXPERIMENTS:
        names = [args.experiment]
    else:
        parser.error(f"unknown experiment {args.experiment!r}; "
                     "use 'list' to see the catalogue")
        return 2  # pragma: no cover - parser.error raises

    context = get_context(_PROFILES[args.profile])
    for name in names:
        result = EXPERIMENTS[name](context)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
