"""Plain-text rendering for experiment results.

Every experiment runner returns a structured result object with a
``render()`` method built on these helpers, so benchmark output prints
the same rows/series the paper's tables and figures report.

The implementations live in :mod:`repro.textutil` (dependency-free);
this module re-exports them for the experiments layer.
"""

from repro.textutil import (format_kv, format_percent, format_series,
                            format_table)

__all__ = ["format_table", "format_kv", "format_percent", "format_series"]
