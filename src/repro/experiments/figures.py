"""Per-figure experiment runners.

Each ``run_fig*`` function regenerates the series/rows behind one
figure of the paper's evaluation from a shared
:class:`~repro.experiments.context.ExperimentContext`, and returns a
result object whose ``render()`` prints them.  Paper-reported values
are included in the rendering for side-by-side comparison; the
substitution (synthetic ISP) means shapes, not absolute numbers, are
expected to match — see EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.chrdist import ChrSplit, chr_cdf, chr_split
from repro.analysis.dedup import DedupReport, run_dedup_window
from repro.analysis.growth import GrowthSeries, growth_series
from repro.analysis.tail import (LOW_VOLUME_THRESHOLD, dhr_cdf,
                                 lookup_volume_distribution)
from repro.analysis.ttl import TtlHistogram, disposable_ttl_histogram
from repro.analysis.volume import (DayVolumeSummary, VolumeSeries,
                                   day_summary, hourly_volumes)
from repro.analysis.cdf import EmpiricalCdf
from repro.core.classifier import (LadTreeClassifier, RocCurve,
                                   cross_validate)
from repro.experiments.context import ExperimentContext
from repro.experiments.report import (format_kv, format_percent,
                                      format_series, format_table)
from repro.traffic.simulate import PAPER_DATES, RPDNS_WINDOW_DATES

__all__ = [
    "Fig02Result", "run_fig02_traffic_volume",
    "Fig03Result", "run_fig03_long_tail",
    "Fig04Result", "run_fig04_chr_distribution",
    "Fig05Result", "run_fig05_new_rrs",
    "Fig07Result", "run_fig07_chr_labeled",
    "Fig12Result", "run_fig12_roc",
    "Fig13Result", "run_fig13_growth",
    "Fig14Result", "run_fig14_ttl",
    "Fig15Result", "run_fig15_pdns_growth",
]


# ---------------------------------------------------------------- Figure 2

@dataclass
class Fig02Result:
    """Traffic above/below the RDNS cluster over six days."""

    summaries: List[DayVolumeSummary]
    below_series: List[VolumeSeries]
    above_series: List[VolumeSeries]

    @property
    def mean_above_below_ratio(self) -> float:
        return float(np.mean([s.above_below_ratio for s in self.summaries]))

    @property
    def mean_nxdomain_share_above(self) -> float:
        return float(np.mean([s.nxdomain_share_above for s in self.summaries]))

    @property
    def mean_nxdomain_share_below(self) -> float:
        return float(np.mean([s.nxdomain_share_below for s in self.summaries]))

    def diurnal_peak_to_trough(self) -> float:
        """Mean peak/trough volume ratio of the below series."""
        ratios = []
        for series in self.below_series:
            trough = max(int(series.total.min()), 1)
            ratios.append(series.total.max() / trough)
        return float(np.mean(ratios))

    def render(self) -> str:
        rows = [(s.day, s.below_total, s.above_total,
                 f"{s.above_below_ratio:.3f}",
                 format_percent(s.nxdomain_share_below),
                 format_percent(s.nxdomain_share_above),
                 format_percent(s.google_akamai_share_below))
                for s in self.summaries]
        table = format_table(
            ["day", "below", "above", "above/below", "nx below", "nx above",
             "google+akamai below"], rows)
        notes = format_kv([
            ("mean above/below ratio (paper: ~0.1, order of magnitude gap)",
             f"{self.mean_above_below_ratio:.3f}"),
            ("mean NXDOMAIN share above (paper: ~40%)",
             format_percent(self.mean_nxdomain_share_above)),
            ("mean NXDOMAIN share below (paper: ~6%)",
             format_percent(self.mean_nxdomain_share_below)),
            ("diurnal peak/trough volume ratio (paper: pronounced)",
             f"{self.diurnal_peak_to_trough():.2f}x"),
        ])
        return f"Figure 2 — traffic above/below RDNS\n{table}\n{notes}"


def run_fig02_traffic_volume(ctx: ExperimentContext,
                             n_days: int = 6) -> Fig02Result:
    dates = RPDNS_WINDOW_DATES[3:3 + n_days]  # 12/01 .. 12/06
    datasets = ctx.datasets(dates)
    day_seconds = ctx.simulator.config.workload.day_seconds
    return Fig02Result(
        summaries=[day_summary(d) for d in datasets],
        below_series=[hourly_volumes(d, "below", day_seconds=day_seconds)
                      for d in datasets],
        above_series=[hourly_volumes(d, "above", day_seconds=day_seconds)
                      for d in datasets])


# ---------------------------------------------------------------- Figure 3

@dataclass
class Fig03Result:
    """Long tail of lookup volume (3a) and domain hit rate (3b)."""

    day: str
    sorted_volumes: np.ndarray
    low_volume_fraction: float       # paper: >90% of RRs below 10 lookups
    dhr_cdf: EmpiricalCdf
    zero_dhr_fraction: float         # paper: ~89%

    def render(self) -> str:
        head = self.sorted_volumes[:5].tolist()
        notes = format_kv([
            ("day", self.day),
            ("distinct RRs", len(self.sorted_volumes)),
            ("top-5 lookup volumes", head),
            (f"RRs with < {LOW_VOLUME_THRESHOLD} lookups (paper: >90%)",
             format_percent(self.low_volume_fraction)),
            ("RRs with zero DHR (paper: ~89%)",
             format_percent(self.zero_dhr_fraction)),
        ])
        return f"Figure 3 — lookup-volume and DHR long tails\n{notes}"


def run_fig03_long_tail(ctx: ExperimentContext) -> Fig03Result:
    date = PAPER_DATES[0]  # 2011-02-01, as in the paper
    hit_rates = ctx.hit_rates(date)
    volumes = lookup_volume_distribution(hit_rates)
    low_fraction = float(np.mean(volumes < LOW_VOLUME_THRESHOLD))
    cdf = dhr_cdf(hit_rates)
    return Fig03Result(day=date.label, sorted_volumes=volumes,
                       low_volume_fraction=low_fraction, dhr_cdf=cdf,
                       zero_dhr_fraction=hit_rates.zero_dhr_fraction())


# ---------------------------------------------------------------- Figure 4

@dataclass
class Fig04Result:
    """CHR distribution for one day and pooled across the year."""

    day: str
    day_cdf: EmpiricalCdf
    year_cdf: EmpiricalCdf
    below_half_fraction: float  # paper: 58% of CHR samples < 0.5

    def render(self) -> str:
        day_series = [f"{x:.1f}:{p:.2f}" for x, p in self.day_cdf.series(6)]
        notes = format_kv([
            ("day", self.day),
            ("CHR samples (day)", len(self.day_cdf)),
            ("CHR < 0.5 fraction (paper: ~58%)",
             format_percent(self.below_half_fraction)),
            ("day CDF (x:P)", " ".join(day_series)),
            ("year-pooled CHR samples", len(self.year_cdf)),
        ])
        return f"Figure 4 — cache hit rate distribution\n{notes}"


def run_fig04_chr_distribution(ctx: ExperimentContext) -> Fig04Result:
    from repro.experiments.context import TRAINING_DATE
    hit_rates = ctx.hit_rates(TRAINING_DATE)
    day_cdf = chr_cdf(hit_rates)
    pooled: List[float] = []
    for date in PAPER_DATES:
        pooled.extend(ctx.hit_rates(date).chr_values().tolist())
    return Fig04Result(day=TRAINING_DATE.label, day_cdf=day_cdf,
                       year_cdf=EmpiricalCdf.from_samples(pooled),
                       below_half_fraction=day_cdf.at(0.4999))


# ---------------------------------------------------------------- Figure 5

@dataclass
class Fig05Result:
    """Deduplicated new RRs per day across the 13-day window."""

    report: DedupReport

    def render(self) -> str:
        rows = [(d.day, d.new_total, d.new_google, d.new_akamai)
                for d in self.report.days]
        table = format_table(["day", "new RRs", "google", "akamai"], rows)
        notes = format_kv([
            ("overall decline first->last day (paper: ~30%)",
             format_percent(self.report.overall_decline())),
            ("total unique RRs", self.report.total_unique_rrs),
        ])
        return f"Figure 5 — new RRs per day (rpDNS window)\n{table}\n{notes}"


def run_fig05_new_rrs(ctx: ExperimentContext) -> Fig05Result:
    datasets = ctx.rpdns_window()
    report = run_dedup_window(datasets, ctx.truth_groups())
    return Fig05Result(report=report)


# ---------------------------------------------------------------- Figure 7

@dataclass
class Fig07Result:
    """CHR distributions of labeled disposable vs non-disposable zones."""

    split: ChrSplit

    def render(self) -> str:
        notes = format_kv([
            ("day", self.split.day),
            ("disposable CHR == 0 (paper: ~90%)",
             format_percent(self.split.disposable_zero_fraction)),
            ("non-disposable CHR > 0.58 (paper: ~45%)",
             format_percent(
                 self.split.non_disposable_fraction_above(0.58))),
            ("non-disposable median CHR",
             f"{self.split.non_disposable_median:.3f}"),
        ])
        return f"Figure 7 — CHR by zone class\n{notes}"


def run_fig07_chr_labeled(ctx: ExperimentContext) -> Fig07Result:
    """CHR split over the *labeled* zones, exactly as in Section IV-B:
    the disposable class is the ground-truth disposable zones, the
    non-disposable class is the popular (Alexa-style) zones — not the
    whole complement, which would drag in the non-disposable long tail
    the paper's labeling deliberately excluded."""
    from repro.analysis.chrdist import chr_cdf_for_zones
    from repro.experiments.context import TRAINING_DATE
    hit_rates = ctx.hit_rates(TRAINING_DATE)
    population = ctx.simulator.population
    disposable_zones = [service.zone for service in population.services]
    popular_zones = [site.zone for site in population.popular_sites]
    split = ChrSplit(
        day=hit_rates.day,
        disposable=chr_cdf_for_zones(hit_rates, disposable_zones),
        non_disposable=chr_cdf_for_zones(hit_rates, popular_zones))
    return Fig07Result(split=split)


# ---------------------------------------------------------------- Figure 12

@dataclass
class Fig12Result:
    """ROC of the LAD tree under 10-fold CV."""

    roc: RocCurve
    auc: float
    tpr_at_05: float
    fpr_at_05: float
    tpr_at_09: float
    fpr_at_09: float
    n_train: int
    n_positive: int

    def render(self) -> str:
        notes = format_kv([
            ("training rows", f"{self.n_train} ({self.n_positive} disposable)"),
            ("AUC", f"{self.auc:.3f}"),
            ("TPR @ theta=0.5 (paper: 97%)", format_percent(self.tpr_at_05)),
            ("FPR @ theta=0.5 (paper: 1%)", format_percent(self.fpr_at_05)),
            ("TPR @ theta=0.9 (paper: 92.4%)", format_percent(self.tpr_at_09)),
            ("FPR @ theta=0.9 (paper: 0.6%)", format_percent(self.fpr_at_09)),
        ])
        return f"Figure 12 — LAD tree ROC (10-fold CV)\n{notes}"


def run_fig12_roc(ctx: ExperimentContext, n_folds: int = 10,
                  seed: int = 11) -> Fig12Result:
    training = ctx.training_set()
    cv = cross_validate(lambda: LadTreeClassifier(), training.X, training.y,
                        n_folds=n_folds, seed=seed)
    at05 = cv.confusion_at(0.5)
    at09 = cv.confusion_at(0.9)
    return Fig12Result(
        roc=cv.roc(), auc=cv.auc(),
        tpr_at_05=at05.true_positive_rate, fpr_at_05=at05.false_positive_rate,
        tpr_at_09=at09.true_positive_rate, fpr_at_09=at09.false_positive_rate,
        n_train=len(training), n_positive=training.n_positive)


# ---------------------------------------------------------------- Figure 13

@dataclass
class Fig13Result:
    """Growth of disposable shares over the six measurement dates."""

    series: GrowthSeries

    def render(self) -> str:
        rows = [(p.day, format_percent(p.queried_fraction),
                 format_percent(p.resolved_fraction),
                 format_percent(p.rr_fraction), p.n_disposable_zones)
                for p in self.series.points]
        table = format_table(
            ["day", "queried (paper 23.1->27.6%)",
             "resolved (paper 27.6->37.2%)", "RRs (paper 38.3->65.5%)",
             "zones found"], rows)
        return f"Figure 13 — growth of disposable zones\n{table}"


def run_fig13_growth(ctx: ExperimentContext) -> Fig13Result:
    results = [ctx.mining_result(date) for date in PAPER_DATES]
    return Fig13Result(series=growth_series(results))


# ---------------------------------------------------------------- Figure 14

@dataclass
class Fig14Result:
    """Disposable-domain TTL histogram, February vs December."""

    february: TtlHistogram
    december: TtlHistogram

    def render(self) -> str:
        rows = []
        ttls = sorted(set(self.february.counts) | set(self.december.counts))
        for ttl in ttls[:12]:
            rows.append((ttl, self.february.counts.get(ttl, 0),
                         self.december.counts.get(ttl, 0)))
        table = format_table(["TTL (s)", "Feb count", "Dec count"], rows)
        notes = format_kv([
            ("Feb mode TTL", self.february.mode()),
            ("Dec mode TTL (paper: 300s)", self.december.mode()),
        ])
        return f"Figure 14 — disposable TTL histogram\n{table}\n{notes}"


def run_fig14_ttl(ctx: ExperimentContext) -> Fig14Result:
    feb, dec = PAPER_DATES[0], PAPER_DATES[-1]
    feb_groups = ctx.mined_groups(feb)
    dec_groups = ctx.mined_groups(dec)
    return Fig14Result(
        february=disposable_ttl_histogram(ctx.dataset(feb), feb_groups),
        december=disposable_ttl_histogram(ctx.dataset(dec), dec_groups))


# ---------------------------------------------------------------- Figure 15

@dataclass
class Fig15Result:
    """New RRs over 13 days, split disposable vs non-disposable."""

    report: DedupReport

    def render(self) -> str:
        rows = [(d.day, d.new_total, d.new_disposable, d.new_non_disposable,
                 format_percent(d.disposable_share))
                for d in self.report.days]
        table = format_table(
            ["day", "new RRs", "disposable", "non-disposable",
             "disposable share (paper 68->94%)"], rows)
        notes = format_kv([
            ("disposable fraction of all unique RRs (paper: 88%)",
             format_percent(self.report.disposable_fraction)),
        ])
        return f"Figure 15 — pDNS new RRs by class\n{table}\n{notes}"


def run_fig15_pdns_growth(ctx: ExperimentContext) -> Fig15Result:
    datasets = ctx.rpdns_window()
    # Use the miner's output on the window's last day — the deployed
    # system's view — rather than ground truth.
    groups = ctx.mined_groups(RPDNS_WINDOW_DATES[-1])
    return Fig15Result(report=run_dedup_window(datasets, groups))
