"""Shared experiment context.

Most figures/tables consume the same expensive artifacts: simulated
fpDNS days, hit-rate tables, a trained classifier, and per-day mining
results.  :class:`ExperimentContext` computes each lazily and caches
it, and a module-level registry shares a context per scale profile so
a benchmark session does not re-simulate the year for every figure.

Two scale profiles ship by default:

* ``SMALL`` — seconds-scale, for the test suite.
* ``MEDIUM`` — the benchmark default; big enough for the measured
  shapes to be stable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.classifier import LadTreeClassifier
from repro.core.features import FeatureExtractor
from repro.core.hitrate import HitRateTable, hit_rates_from_digest
from repro.core.interning import DayDigest, digest_of
from repro.core.labeling import TrainingSet, build_training_set
from repro.core.miner import MinerConfig
from repro.core.mining_pipeline import CalendarMiner, MinerResultCache
from repro.core.parallelism import worker_count_from_env
from repro.core.ranking import (DailyMiningResult, DisposableZoneRanker,
                                build_tree_from_digest)
from repro.pdns.database import PassiveDnsDatabase, PdnsBackend
from repro.pdns.records import FpDnsDataset
from repro.traffic.artifacts import FpDnsArtifactCache, artifact_key
from repro.traffic.parallel import ShardedTraceSimulator
from repro.traffic.population import PopulationConfig
from repro.traffic.simulate import (PAPER_DATES, RPDNS_WINDOW_DATES,
                                    MeasurementDate, SimulatorConfig,
                                    TraceSimulator)
from repro.traffic.workload import WorkloadConfig

__all__ = ["ScaleProfile", "SMALL", "MEDIUM", "ExperimentContext",
           "get_context"]


@dataclass(frozen=True)
class ScaleProfile:
    """A named simulation scale."""

    name: str
    events_per_day: int
    n_popular_sites: int
    n_longtail_sites: int
    n_extra_disposable: int
    n_clients: int
    cache_capacity: int
    cdn_objects: int

    def simulator_config(self) -> SimulatorConfig:
        return SimulatorConfig(
            cache_capacity=self.cache_capacity,
            population=PopulationConfig(
                n_popular_sites=self.n_popular_sites,
                n_longtail_sites=self.n_longtail_sites,
                n_extra_disposable=self.n_extra_disposable,
                cdn_objects=self.cdn_objects),
            workload=WorkloadConfig(
                events_per_day=self.events_per_day,
                n_clients=self.n_clients))


SMALL = ScaleProfile(name="small", events_per_day=12_000,
                     n_popular_sites=80, n_longtail_sites=2_400,
                     n_extra_disposable=24, n_clients=160,
                     cache_capacity=6_000, cdn_objects=4_000)

MEDIUM = ScaleProfile(name="medium", events_per_day=60_000,
                      n_popular_sites=200, n_longtail_sites=6_000,
                      n_extra_disposable=40, n_clients=400,
                      cache_capacity=25_000, cdn_objects=20_000)

# The training day mirrors the paper's 11/10/2011 labeling day.
TRAINING_DATE = MeasurementDate("2011-11-10", 313, 0.85)


class ExperimentContext:
    """Lazily computed, cached experiment artifacts for one profile.

    Parameters
    ----------
    profile:
        The simulation scale.
    n_workers:
        Shard the calendar simulation across this many worker processes
        (:class:`~repro.traffic.parallel.ShardedTraceSimulator`).  The
        merged result is byte-identical to serial, so this is purely a
        wall-clock knob.  Default 1 (serial).
    artifact_cache:
        Optional :class:`~repro.traffic.artifacts.FpDnsArtifactCache`.
        Each completed day is persisted there, and a later session with
        the same profile loads it instead of simulating.
    resident_days:
        Keep at most this many per-entry day datasets resident in
        memory (requires ``artifact_cache``; ignored without one).
        Older days are evicted after each newly produced day and
        transparently reloaded from the artifact cache on the next
        request.  ``None`` (the default) keeps every day resident.
        :meth:`release_day` is the matching manual eviction path.
    """

    def __init__(self, profile: ScaleProfile, n_workers: int = 1,
                 artifact_cache: Optional[FpDnsArtifactCache] = None,
                 miner_workers: int = 1,
                 miner_cache: Optional[MinerResultCache] = None,
                 resident_days: Optional[int] = None) -> None:
        self.profile = profile
        self.n_workers = n_workers
        self.artifacts = artifact_cache
        self.miner_workers = miner_workers
        self.miner_cache = miner_cache
        self.resident_days = resident_days
        self.simulator = TraceSimulator(profile.simulator_config())
        self._datasets: Dict[str, FpDnsDataset] = {}
        self._digests: Dict[str, DayDigest] = {}
        self._hit_rates: Dict[str, HitRateTable] = {}
        self._mining: Dict[str, DailyMiningResult] = {}
        self._training_set: Optional[TrainingSet] = None
        self._classifier: Optional[LadTreeClassifier] = None
        self._last_day_index = -1
        # Chronological record of every day produced (simulated or
        # loaded) — the artifact-cache key material — plus how many of
        # those days the *serial* simulator has actually executed.  When
        # the two diverge (cache hits, sharded runs), the serial caches
        # are cold and must be rewarmed by replay before simulating a
        # later day.  The record is append-only by construction: cache
        # keys embed the full production history, so forgetting a day
        # would change every later key.
        self._history: List[MeasurementDate] = []
        self._replayed = 0
        #: Day label -> index into ``_history`` for every produced day.
        #: Membership here (not in ``_datasets``) is the produced
        #: marker, so resident datasets can be evicted independently.
        self._produced: Dict[str, int] = {}
        #: Fresh segmented-store roots handed out this session.
        self._pdns_runs = 0

    def _calendar(self) -> List[MeasurementDate]:
        """Every standard date, in chronological order."""
        dates = {date.label: date
                 for date in [*PAPER_DATES, TRAINING_DATE,
                              *RPDNS_WINDOW_DATES]}
        return sorted(dates.values(), key=lambda d: d.day_index)

    # -- datasets ---------------------------------------------------------

    def _record_day(self, date: MeasurementDate, dataset: FpDnsDataset,
                    store: bool) -> None:
        # Both records are append-only by design: ``_history`` is the
        # artifact-cache key material (forgetting a day would change
        # every later key) and ``_produced`` is the produced marker
        # that makes dataset eviction safe.  Both hold O(days) small
        # values, not per-entry data.
        self._history.append(date)  # reprolint: disable=R015
        # reprolint: disable=R015
        self._produced[date.label] = len(self._history) - 1
        self._datasets[date.label] = dataset
        self._last_day_index = date.day_index
        if store and self.artifacts is not None:
            digest = None
            if self.artifacts.format == "columnar":
                # Encoding needs the day's digest anyway; build it once
                # and memoise so the first analysis pass gets it free.
                # digest_of reuses a digest the dataset already carries
                # (parallel-merged and artifact-loaded columnar days),
                # so only serially simulated days pay a digest build.
                digest = self._digests.get(date.label)
                if digest is None:
                    digest = digest_of(dataset)
                    self._digests[date.label] = digest
            self.artifacts.store(
                artifact_key(self.simulator.config, self._history), dataset,
                digest=digest)
        self._evict_resident()

    def _evict_resident(self) -> None:
        """Bound the resident per-entry datasets (R015).

        Oldest-produced days are dropped from the in-memory memo once
        more than ``resident_days`` are resident; they stay *produced*
        (``_produced``/``_history`` are untouched) and reload from the
        artifact cache on the next request.  Without an artifact cache
        eviction would make a day unrecoverable, so it is skipped.
        """
        if self.resident_days is None or self.artifacts is None:
            return
        while len(self._datasets) > max(1, self.resident_days):
            oldest = min(self._datasets,
                         key=lambda label: self._produced[label])
            self._datasets.pop(oldest)

    def _reload(self, date: MeasurementDate) -> FpDnsDataset:
        """Bring an evicted (produced) day back into residency."""
        if self.artifacts is None:
            raise RuntimeError(
                f"day {date.label} was released but no artifact cache is "
                f"configured to reload it from")
        key = artifact_key(self.simulator.config,
                           self._history[:self._produced[date.label] + 1])
        cached = self.artifacts.load(key)
        if cached is None:
            raise RuntimeError(
                f"day {date.label} is no longer in the artifact cache; "
                f"cannot restore the released dataset")
        self._datasets[date.label] = cached
        self._evict_resident()
        return cached

    def release_day(self, date: MeasurementDate) -> None:
        """Drop the resident per-day memos for ``date``.

        Frees the dataset, digest, hit-rate table, and mining results;
        the day stays *produced*, so a later request reloads the
        dataset from the artifact cache and recomputes the derived
        tables.  This is the manual eviction path for long sessions
        (the automatic one is the ``resident_days`` bound).
        """
        label = date.label
        self._datasets.pop(label, None)
        self._digests.pop(label, None)
        self._hit_rates.pop(label, None)
        for key in [k for k in self._mining
                    if k.startswith(f"{label}@")]:
            self._mining.pop(key)

    def _simulate_batch(self, dates: List[MeasurementDate]) -> None:
        """Produce ``dates`` (chronological), cheapest source first:
        artifact cache, then sharded-parallel (cold start only), then
        the serial simulator (rewarming its caches by replay if they
        are behind the recorded history)."""
        remaining = list(dates)
        while remaining and self.artifacts is not None:
            key = artifact_key(self.simulator.config,
                               [*self._history, remaining[0]])
            cached = self.artifacts.load(key)
            if cached is None:
                break
            self._record_day(remaining.pop(0), cached, store=False)
        if not remaining:
            return
        if self.n_workers > 1 and not self._history and len(remaining) > 1:
            # Nothing produced yet: the sharded engine's cold-cache
            # window is exactly this batch.
            sharded = ShardedTraceSimulator(self.simulator.config,
                                            n_workers=self.n_workers)
            for date, dataset in zip(remaining, sharded.run_days(remaining)):
                self._record_day(date, dataset, store=True)
            return
        # Serial path: replay any days the serial simulator missed
        # (their outputs exist already; only the cache state matters).
        for date in self._history[self._replayed:]:
            self.simulator.run_day(date)
            self._replayed += 1
        for date in remaining:
            dataset = self.simulator.run_day(date)
            self._replayed += 1
            self._record_day(date, dataset, store=True)

    def dataset(self, date: MeasurementDate) -> FpDnsDataset:
        """Simulated fpDNS day for ``date``.

        Resolver caches persist across days, so simulation must happen
        in chronological order regardless of request order: the first
        request runs the whole standard calendar up front; later ad-hoc
        dates must not go back in time.
        """
        if date.label in self._datasets:
            return self._datasets[date.label]
        if date.label in self._produced:
            # Produced earlier but evicted from residency: restore it
            # from the artifact cache rather than re-simulating.
            return self._reload(date)
        pending = [d for d in self._calendar()
                   if d.label not in self._produced]
        if any(d.label == date.label for d in pending):
            self._simulate_batch(pending)
        else:
            if date.day_index < self._last_day_index:
                raise ValueError(
                    f"cannot simulate {date.label} (day {date.day_index}) "
                    f"after day {self._last_day_index}: resolver caches "
                    "would travel back in time")
            self._simulate_batch([date])
        resident = self._datasets.get(date.label)
        if resident is not None:
            return resident
        # The residency bound may have evicted the day in the same
        # batch that produced it; bring it straight back.
        return self._reload(date)

    def datasets(self, dates: Sequence[MeasurementDate]) -> List[FpDnsDataset]:
        return [self.dataset(date) for date in dates]

    def paper_dates(self) -> List[FpDnsDataset]:
        return self.datasets(PAPER_DATES)

    def rpdns_window(self) -> List[FpDnsDataset]:
        return self.datasets(RPDNS_WINDOW_DATES)

    def digest(self, date: MeasurementDate) -> DayDigest:
        """Columnar digest of the day — the single pass every
        downstream consumer (hit rates, tree, mining, analyses) shares.

        A cache-warm session whose days were loaded from columnar
        artifacts gets the deserialised digest directly
        (:func:`~repro.core.interning.digest_of`): disk -> numpy ->
        digest, no entry materialisation.
        """
        if date.label not in self._digests:
            self._digests[date.label] = digest_of(self.dataset(date))
        return self._digests[date.label]

    def hit_rates(self, date: MeasurementDate) -> HitRateTable:
        if date.label not in self._hit_rates:
            self._hit_rates[date.label] = hit_rates_from_digest(
                self.digest(date))
        return self._hit_rates[date.label]

    # -- training / classification -------------------------------------------

    def training_set(self) -> TrainingSet:
        if self._training_set is None:
            digest = self.digest(TRAINING_DATE)
            tree = build_tree_from_digest(digest)
            extractor = FeatureExtractor(tree, self.hit_rates(TRAINING_DATE))
            self._training_set = build_training_set(
                self.simulator.labeled_zones(), tree, extractor)
        return self._training_set

    def classifier(self) -> LadTreeClassifier:
        if self._classifier is None:
            training = self.training_set()
            self._classifier = LadTreeClassifier().fit(training.X, training.y)
        return self._classifier

    def mining_result(self, date: MeasurementDate,
                      threshold: float = 0.9) -> DailyMiningResult:
        key = f"{date.label}@{threshold}"
        if key not in self._mining:
            ranker = DisposableZoneRanker(
                self.classifier(), MinerConfig(threshold=threshold))
            self._mining[key] = ranker.run_digest(self.digest(date),
                                                  self.hit_rates(date))
        return self._mining[key]

    def mine_calendar(self, dates: Optional[Sequence[MeasurementDate]] = None,
                      threshold: float = 0.9) -> List[DailyMiningResult]:
        """Mine a window of days through the parallel calendar miner.

        Honours the context's ``miner_workers`` / ``miner_cache``
        settings; results land in the per-day memo so later
        :meth:`mining_result` calls are free.
        """
        if dates is None:
            dates = PAPER_DATES
        datasets = self.datasets(list(dates))
        miner = CalendarMiner(self.classifier(),
                              MinerConfig(threshold=threshold),
                              n_workers=self.miner_workers,
                              cache=self.miner_cache)
        results = miner.mine_calendar(datasets)
        for date, result in zip(dates, results):
            self._mining[f"{date.label}@{threshold}"] = result
        return results

    def mined_groups(self, date: MeasurementDate,
                     threshold: float = 0.9) -> Set[Tuple[str, int]]:
        return self.mining_result(date, threshold).groups

    # -- passive-DNS backend --------------------------------------------

    def pdns_database(self) -> PdnsBackend:
        """A fresh, empty passive-DNS backend for one study run.

        With ``REPRO_PDNS_STORE`` set, returns a
        :class:`~repro.pdns.store.SegmentedPdnsStore` rooted in a fresh
        subdirectory of that path (studies must start from an empty
        store); otherwise the in-memory
        :class:`~repro.pdns.database.PassiveDnsDatabase`.  The choice
        never changes study *results* — the backends are
        query-equivalent — only memory/disk placement.
        """
        root = os.environ.get("REPRO_PDNS_STORE")
        if not root:
            return PassiveDnsDatabase()
        from repro.pdns.store import SegmentedPdnsStore

        while True:
            candidate = (Path(root)
                         / f"{self.profile.name}-run{self._pdns_runs}")
            self._pdns_runs += 1
            # A leftover store from an earlier session must not leak
            # its rows into this run; probe until an unused root.
            if not any(candidate.glob("*.pdnsseg")):
                return SegmentedPdnsStore(candidate)

    # -- ground truth -------------------------------------------------------

    def truth_groups(self) -> Set[Tuple[str, int]]:
        return self.simulator.disposable_truth()


_CONTEXTS: Dict[str, ExperimentContext] = {}


def _options_from_env() -> Tuple[int, Optional[FpDnsArtifactCache],
                                 int, Optional[MinerResultCache],
                                 Optional[int]]:
    """Opt-in acceleration knobs for shared contexts.

    ``REPRO_SIM_WORKERS`` shards the calendar simulation across that
    many processes; ``REPRO_ARTIFACT_CACHE`` names a directory to
    persist/load fpDNS days.  ``REPRO_MINER_WORKERS`` mines calendar
    days in that many processes; ``REPRO_MINER_CACHE`` names a
    directory to persist/replay per-day mining results.
    ``REPRO_RESIDENT_DAYS`` bounds how many per-entry day datasets stay
    resident in memory (evicted days reload from the artifact cache).
    All of these leave every produced byte identical to the serial,
    cache-less run —
    they only change wall-clock time — so reading them here does not
    violate the determinism contract.  (The artifact cache additionally
    honours ``REPRO_ARTIFACT_FORMAT`` — ``columnar`` default or ``tsv``
    — which changes bytes on disk only, never a loaded day's content;
    see :mod:`repro.traffic.artifacts`.)
    """
    n_workers = worker_count_from_env("REPRO_SIM_WORKERS", default=1)
    cache_dir = os.environ.get("REPRO_ARTIFACT_CACHE")
    cache = FpDnsArtifactCache(cache_dir) if cache_dir else None
    miner_workers = worker_count_from_env("REPRO_MINER_WORKERS", default=1)
    miner_cache_dir = os.environ.get("REPRO_MINER_CACHE")
    miner_cache = (MinerResultCache(miner_cache_dir)
                   if miner_cache_dir else None)
    resident_raw = os.environ.get("REPRO_RESIDENT_DAYS")
    resident_days = int(resident_raw) if resident_raw else None
    return n_workers, cache, miner_workers, miner_cache, resident_days


def get_context(profile: ScaleProfile = MEDIUM) -> ExperimentContext:
    """Shared per-profile context (benchmarks reuse one simulation).

    Honours the ``REPRO_SIM_WORKERS`` / ``REPRO_ARTIFACT_CACHE`` /
    ``REPRO_MINER_WORKERS`` / ``REPRO_MINER_CACHE`` /
    ``REPRO_RESIDENT_DAYS`` environment knobs
    (see :func:`_options_from_env`) when the context is first created;
    later calls return the existing instance.
    """
    if profile.name not in _CONTEXTS:
        (n_workers, artifact_cache, miner_workers, miner_cache,
         resident_days) = _options_from_env()
        _CONTEXTS[profile.name] = ExperimentContext(
            profile, n_workers=n_workers, artifact_cache=artifact_cache,
            miner_workers=miner_workers, miner_cache=miner_cache,
            resident_days=resident_days)
    return _CONTEXTS[profile.name]
