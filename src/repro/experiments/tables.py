"""Table experiments: Tables I and II and the Figure 11 summary."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.analysis.tail import (TailRow, lookup_volume_tail_row,
                                 zero_dhr_tail_row)
from repro.core.classifier import LadTreeClassifier, cross_validate
from repro.core.ranking import name_matches_groups
from repro.experiments.context import ExperimentContext
from repro.experiments.report import format_kv, format_percent, format_table
from repro.traffic.simulate import PAPER_DATES

__all__ = ["TableResult", "run_table1_lookup_tail", "run_table2_dhr_tail",
           "Fig11Summary", "run_fig11_summary"]


@dataclass
class TableResult:
    """Rows of Table I or Table II."""

    title: str
    rows: List[TailRow]

    def render(self) -> str:
        body = [(row.day, format_percent(row.tail_fraction, 2),
                 format_percent(row.disposable_share_of_tail, 2),
                 format_percent(row.disposable_in_tail_fraction, 2))
                for row in self.rows]
        table = format_table(
            ["date", "tail size", "disposable share of tail",
             "% of all disposable in tail"], body)
        return f"{self.title}\n{table}"

    def disposable_share_series(self) -> List[float]:
        return [row.disposable_share_of_tail for row in self.rows]

    def in_tail_series(self) -> List[float]:
        return [row.disposable_in_tail_fraction for row in self.rows]


def run_table1_lookup_tail(ctx: ExperimentContext) -> TableResult:
    """Table I: disposable RRs in the low-lookup-volume tail."""
    rows = [lookup_volume_tail_row(ctx.hit_rates(date),
                                   ctx.mined_groups(date))
            for date in PAPER_DATES]
    return TableResult(
        title="Table I — disposable RRs in low lookup volume tail "
              "(paper: tail 90->94%, disposable share 28->57%, "
              "in-tail 96-98%)",
        rows=rows)


def run_table2_dhr_tail(ctx: ExperimentContext) -> TableResult:
    """Table II: disposable RRs in the zero-domain-hit-rate tail."""
    rows = [zero_dhr_tail_row(ctx.hit_rates(date), ctx.mined_groups(date))
            for date in PAPER_DATES]
    return TableResult(
        title="Table II — disposable RRs in zero domain hit rate tail "
              "(paper: tail 89->94%, disposable share 28->57%, "
              "in-tail 94-97%)",
        rows=rows)


@dataclass
class Fig11Summary:
    """The Figure 11 measurement-results summary table."""

    tpr_at_05: float
    fpr_at_05: float
    n_disposable_zones: int
    n_disposable_2lds: int
    queried_first: float
    queried_last: float
    resolved_first: float
    resolved_last: float
    rr_first: float
    rr_last: float
    example_zones: List[str]
    cdn_zone_count: int = 0
    # Section V-C: "On average, there are 7 periods in disposable
    # domains" — disposable names are longer than normal ones.
    mean_disposable_periods: float = 0.0

    @property
    def cdn_zone_fraction(self) -> float:
        """Paper Section V-C1: 91 of 14,488 flagged zones (0.6 %) were
        CDN related — borderline cases where unpopular content merely
        looks one-time from this vantage point."""
        return (self.cdn_zone_count / self.n_disposable_zones
                if self.n_disposable_zones else 0.0)

    def render(self) -> str:
        pairs = [
            ("classifier accuracy (paper: 97% TP / 1% FP)",
             f"{format_percent(self.tpr_at_05)} TP / "
             f"{format_percent(self.fpr_at_05)} FP"),
            ("number of disposable zones (paper: 14,488)",
             self.n_disposable_zones),
            ("number of 2LDs with disposable zones (paper: 12,397)",
             self.n_disposable_2lds),
            ("disposable/queried domains (paper: 23.1% -> 27.6%)",
             f"{format_percent(self.queried_first)} -> "
             f"{format_percent(self.queried_last)}"),
            ("disposable/resolved domains (paper: 27.6% -> 37.2%)",
             f"{format_percent(self.resolved_first)} -> "
             f"{format_percent(self.resolved_last)}"),
            ("disposable RRs/all RRs (paper: 38.3% -> 65.5%)",
             f"{format_percent(self.rr_first)} -> "
             f"{format_percent(self.rr_last)}"),
            ("CDN-related flagged zones (paper: 0.6%)",
             f"{self.cdn_zone_count} "
             f"({format_percent(self.cdn_zone_fraction)})"),
            ("mean periods in disposable names (paper: ~7)",
             f"{self.mean_disposable_periods:.1f}"),
            ("example disposable zones",
             ", ".join(self.example_zones[:8])),
        ]
        return format_kv(pairs, title="Figure 11 — measurement summary")


def run_fig11_summary(ctx: ExperimentContext) -> Fig11Summary:
    training = ctx.training_set()
    cv = cross_validate(lambda: LadTreeClassifier(), training.X, training.y,
                        n_folds=10, seed=11)
    at05 = cv.confusion_at(0.5)
    results = [ctx.mining_result(date) for date in PAPER_DATES]
    all_zone_depths: Set[Tuple[str, int]] = set()
    all_2lds: Set[str] = set()
    for result in results:
        all_zone_depths |= result.groups
        all_2lds |= result.disposable_2lds
    examples = sorted({zone for zone, _ in all_zone_depths})
    from repro.analysis.volume import ZONE_GROUPS, _in_group
    cdn_zones = sum(1 for zone, _ in all_zone_depths
                    if _in_group(zone, ZONE_GROUPS["akamai"]))
    # Mean periods (label count - 1) over flagged names on the last day.
    last = results[-1]
    last_dataset = ctx.dataset(PAPER_DATES[-1])
    flagged = [name for name in last_dataset.resolved_domains()
               if name_matches_groups(name, last.groups)]
    mean_periods = (float(np.mean([name.count(".") for name in flagged]))
                    if flagged else 0.0)
    return Fig11Summary(
        tpr_at_05=at05.true_positive_rate,
        fpr_at_05=at05.false_positive_rate,
        n_disposable_zones=len(all_zone_depths),
        n_disposable_2lds=len(all_2lds),
        queried_first=results[0].queried_fraction,
        queried_last=results[-1].queried_fraction,
        resolved_first=results[0].resolved_fraction,
        resolved_last=results[-1].resolved_fraction,
        rr_first=results[0].rr_fraction,
        rr_last=results[-1].rr_fraction,
        example_zones=examples,
        cdn_zone_count=cdn_zones,
        mean_disposable_periods=mean_periods)
