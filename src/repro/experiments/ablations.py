"""Ablation experiments beyond the paper's headline results.

* Classifier comparison — the paper's model-selection step (it reports
  trying naive Bayes, nearest neighbours, neural networks and logistic
  regression before choosing the LAD tree, omitting the numbers "in
  the interest of space"; we print them).
* Feature-family ablation — tree-structure features only vs
  cache-hit-rate features only vs both, quantifying the paper's claim
  that the CHR features "provide the necessary classification signal"
  while the entropy features handle structure.
* Threshold sweep — miner precision/recall against ground truth as θ
  varies, contextualising the paper's θ = 0.9 choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.classifier import (BinaryClassifier, DecisionTreeClassifier,
                                   GaussianNaiveBayes, KNearestNeighbors,
                                   LadTreeClassifier,
                                   LogisticRegressionClassifier,
                                   NeuralNetworkClassifier,
                                   cross_validate, evaluate_classifiers)
from repro.core.miner import MinerConfig
from repro.core.ranking import DisposableZoneRanker, name_matches_groups
from repro.experiments.context import TRAINING_DATE, ExperimentContext
from repro.experiments.report import format_percent, format_table

__all__ = ["ClassifierComparisonResult", "run_classifier_comparison",
           "FeatureAblationResult", "run_feature_ablation",
           "ThresholdSweepResult", "run_threshold_sweep"]

# Column indices of the two feature families in the 8-dim vector.
TREE_FEATURES = (0, 1, 2, 3, 4, 5)
CHR_FEATURES = (6, 7)


def default_candidates() -> Dict[str, Callable[[], BinaryClassifier]]:
    return {
        "lad-tree": lambda: LadTreeClassifier(),
        "cart": lambda: DecisionTreeClassifier(),
        "naive-bayes": lambda: GaussianNaiveBayes(),
        "knn": lambda: KNearestNeighbors(k=5),
        "logistic": lambda: LogisticRegressionClassifier(),
        "neural-net": lambda: NeuralNetworkClassifier(),
    }


@dataclass
class ClassifierComparisonResult:
    summary: Dict[str, Dict[str, float]]

    def render(self) -> str:
        rows = [(name,
                 f"{m['auc']:.3f}",
                 format_percent(m["tpr@0.5"]),
                 format_percent(m["fpr@0.5"]),
                 format_percent(m["tpr@0.9"]),
                 format_percent(m["fpr@0.9"]))
                for name, m in sorted(self.summary.items(),
                                      key=lambda kv: -kv[1]["auc"])]
        table = format_table(
            ["model", "AUC", "TPR@0.5", "FPR@0.5", "TPR@0.9", "FPR@0.9"],
            rows)
        return "Ablation — model selection (Section V-C)\n" + table

    def best_model(self) -> str:
        return max(self.summary, key=lambda name: self.summary[name]["auc"])


def run_classifier_comparison(ctx: ExperimentContext,
                              n_folds: int = 10) -> ClassifierComparisonResult:
    training = ctx.training_set()
    summary = evaluate_classifiers(default_candidates(), training.X,
                                   training.y, n_folds=n_folds, seed=11)
    return ClassifierComparisonResult(summary=summary)


@dataclass
class FeatureAblationResult:
    aucs: Dict[str, float]

    def render(self) -> str:
        rows = [(name, f"{auc:.3f}") for name, auc in self.aucs.items()]
        return ("Ablation — feature families\n"
                + format_table(["feature set", "AUC"], rows))


def run_feature_ablation(ctx: ExperimentContext,
                         n_folds: int = 10) -> FeatureAblationResult:
    training = ctx.training_set()
    subsets = {
        "tree-structure only": TREE_FEATURES,
        "cache-hit-rate only": CHR_FEATURES,
        "both families": tuple(range(training.X.shape[1])),
    }
    aucs = {}
    for name, columns in subsets.items():
        X = training.X[:, list(columns)]
        cv = cross_validate(lambda: LadTreeClassifier(), X, training.y,
                            n_folds=n_folds, seed=11)
        aucs[name] = cv.auc()
    return FeatureAblationResult(aucs=aucs)


@dataclass
class ThresholdSweepResult:
    rows: List[Tuple[float, float, float, int]]  # theta, precision, recall, n

    def render(self) -> str:
        body = [(f"{theta:.2f}", format_percent(precision),
                 format_percent(recall), count)
                for theta, precision, recall, count in self.rows]
        return ("Ablation — miner threshold sweep (paper uses theta=0.9)\n"
                + format_table(["theta", "precision", "recall",
                                "zones found"], body))


def run_threshold_sweep(ctx: ExperimentContext,
                        thresholds: Sequence[float] = (0.5, 0.7, 0.9, 0.99)
                        ) -> ThresholdSweepResult:
    """Mine the training day at several θ and score vs ground truth.

    Precision: fraction of flagged names (sampled from the day's
    resolved names) that are truly disposable.  Recall: fraction of
    truly disposable names flagged.
    """
    dataset = ctx.dataset(TRAINING_DATE)
    truth = ctx.truth_groups()
    names = sorted(dataset.resolved_domains())
    truth_flags = np.array([name_matches_groups(name, truth)
                            for name in names])
    rows = []
    for theta in thresholds:
        result = ctx.mining_result(TRAINING_DATE, threshold=theta)
        mined = result.groups
        mined_flags = np.array([name_matches_groups(name, mined)
                                for name in names])
        tp = int(np.sum(mined_flags & truth_flags))
        fp = int(np.sum(mined_flags & ~truth_flags))
        fn = int(np.sum(~mined_flags & truth_flags))
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        rows.append((theta, precision, recall, len(result.findings)))
    return ThresholdSweepResult(rows=rows)
