"""DNS wire-format size accounting (RFC 1035 §3-4).

The paper sizes its fpDNS dataset at ~60 GB/day (February) growing to
~145 GB/day (December) — the storage pressure disposable domains put
on collection pipelines.  Estimating that requires real wire sizes:
length-prefixed label encoding, the 14-byte RR fixed part, per-type
RDATA sizes, and the message-level name compression real responses
use.  This module implements exactly that much of RFC 1035 — enough to
price a response in bytes, not to serialise resolvable packets.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.names import labels
from repro.dns.message import ResourceRecord, Response, RRType

__all__ = ["MAX_LABEL_LENGTH", "MAX_NAME_LENGTH", "encoded_name_size",
           "NameCompressor", "rdata_size", "rr_wire_size",
           "response_wire_size", "WireFormatError"]

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255
_HEADER_SIZE = 12          # RFC 1035 §4.1.1
_QUESTION_FIXED = 4        # QTYPE + QCLASS
_RR_FIXED = 10             # TYPE + CLASS + TTL + RDLENGTH
_POINTER_SIZE = 2          # compression pointer


class WireFormatError(ValueError):
    """Raised for names that cannot be encoded (RFC 1035 limits)."""


def encoded_name_size(name: str) -> int:
    """Bytes of the uncompressed wire encoding of ``name``.

    One length byte per label plus the label bytes, plus the root
    terminator: ``www.example.com`` -> 1+3 + 1+7 + 1+3 + 1 = 17.
    """
    parts = labels(name)
    total = 1  # root terminator
    for label in parts:
        if len(label) > MAX_LABEL_LENGTH:
            raise WireFormatError(
                f"label {label[:20]!r}... exceeds {MAX_LABEL_LENGTH} bytes")
        total += 1 + len(label)
    if total > MAX_NAME_LENGTH:
        raise WireFormatError(
            f"name {name[:40]!r}... encodes to {total} bytes "
            f"(max {MAX_NAME_LENGTH})")
    return total


class NameCompressor:
    """Message-scoped name compression (RFC 1035 §4.1.4).

    The first occurrence of each name suffix is written in full and
    registered; later names reuse the longest registered suffix via a
    2-byte pointer.  Only sizes are tracked, never actual offsets.
    """

    def __init__(self) -> None:
        self._known: set = set()

    def name_size(self, name: str) -> int:
        """Size of ``name`` in this message, registering its suffixes."""
        parts = labels(name)
        size = 0
        pointer_used = False
        for i in range(len(parts)):
            suffix = ".".join(parts[i:])
            if suffix in self._known:
                size += _POINTER_SIZE
                pointer_used = True
                break
            size += 1 + len(parts[i])
            if len(parts[i]) > MAX_LABEL_LENGTH:
                raise WireFormatError(
                    f"label {parts[i][:20]!r}... exceeds "
                    f"{MAX_LABEL_LENGTH} bytes")
        if not pointer_used:
            size += 1  # root terminator
        # Register every suffix of this name for later reuse.
        for i in range(len(parts)):
            self._known.add(".".join(parts[i:]))
        return size


def rdata_size(rr: ResourceRecord,
               compressor: Optional[NameCompressor] = None) -> int:
    """RDATA length in bytes for the record types the study uses."""
    if rr.rtype is RRType.A:
        return 4
    if rr.rtype is RRType.AAAA:
        return 16
    if rr.rtype is RRType.CNAME:
        if compressor is not None:
            return compressor.name_size(rr.rdata)
        return encoded_name_size(rr.rdata)
    # DNSSEC records: typical sizes (see repro.dns.dnssec constants).
    if rr.rtype is RRType.RRSIG:
        return 150
    if rr.rtype is RRType.DNSKEY:
        return 260
    if rr.rtype is RRType.DS:
        return 36
    raise WireFormatError(f"unsized record type: {rr.rtype}")


def rr_wire_size(rr: ResourceRecord,
                 compressor: Optional[NameCompressor] = None) -> int:
    """Wire size of one resource record (owner + fixed part + RDATA)."""
    if compressor is not None:
        owner = compressor.name_size(rr.name)
    else:
        owner = encoded_name_size(rr.name)
    return owner + _RR_FIXED + rdata_size(rr, compressor)


def response_wire_size(response: Response) -> int:
    """Wire size of a whole response message, with name compression."""
    compressor = NameCompressor()
    size = _HEADER_SIZE
    size += compressor.name_size(response.question.qname) + _QUESTION_FIXED
    for rr in response.answers:
        size += rr_wire_size(rr, compressor)
    for sig in response.signatures:
        size += rr_wire_size(sig, compressor)
    return size
