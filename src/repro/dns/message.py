"""DNS message primitives for the resolver simulator.

The monitoring methodology in the paper records only the *answer
sections* of DNS responses seen above and below the recursive servers
(Section III-A), so the simulator models queries, resource records and
responses at exactly that granularity — no wire format, no compression,
just the semantic tuple the fpDNS dataset stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.dnstypes import RCode, RRType
from repro.core.names import normalize

__all__ = ["RRType", "RCode", "ResourceRecord", "Question", "Response"]


@dataclass(frozen=True)
class ResourceRecord:
    """A single resource record: (name, type, TTL, RDATA).

    Two records are the *same cache/pDNS object* when their
    (name, rtype, rdata) triple matches; the TTL is metadata that may
    legitimately differ between observations, so it is excluded from
    :meth:`key`.
    """

    name: str
    rtype: RRType
    ttl: int
    rdata: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalize(self.name))
        if self.ttl < 0:
            raise ValueError(f"TTL must be non-negative, got {self.ttl}")

    def key(self) -> Tuple[str, RRType, str]:
        """Identity triple used for caching and deduplication."""
        return (self.name, self.rtype, self.rdata)

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """Copy of this record carrying a different (e.g. decayed) TTL.

        Hot path: every cache hit decays TTLs on each answer record, so
        the copy bypasses ``__init__`` — ``name`` is already normalized
        and only the new TTL needs validating.
        """
        if ttl < 0:
            raise ValueError(f"TTL must be non-negative, got {ttl}")
        rr = object.__new__(ResourceRecord)
        object.__setattr__(rr, "name", self.name)
        object.__setattr__(rr, "rtype", self.rtype)
        object.__setattr__(rr, "ttl", ttl)
        object.__setattr__(rr, "rdata", self.rdata)
        return rr


@dataclass(frozen=True)
class Question:
    """A DNS question: qname + qtype.

    ``key`` is the precomputed ``(qname, qtype)`` identity tuple the
    resolver caches index by; building it once at construction spares
    the cache lookup/insert path a tuple allocation per query.
    """

    qname: str
    qtype: RRType = RRType.A
    key: Tuple[str, RRType] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "qname", normalize(self.qname))
        object.__setattr__(self, "key", (self.qname, self.qtype))


@dataclass
class Response:
    """A DNS response as seen at the monitoring point.

    ``answers`` is the answer section (empty on NXDOMAIN/SERVFAIL);
    ``signatures`` carries RRSIG records when the answering zone is
    signed (consumed only by the DNSSEC cost substrate).
    """

    question: Question
    rcode: RCode
    answers: List[ResourceRecord] = field(default_factory=list)
    signatures: List["ResourceRecord"] = field(default_factory=list)

    @property
    def is_nxdomain(self) -> bool:
        return self.rcode is RCode.NXDOMAIN

    @property
    def is_success(self) -> bool:
        return self.rcode is RCode.NOERROR and bool(self.answers)
