"""Authoritative zone content.

Three kinds of zone back the authoritative hierarchy:

* :class:`StaticZone` — a fixed set of records (ordinary web zones,
  Alexa-style popular sites).
* :class:`WildcardZone` — answers *every* name under an apex from a
  wildcard template.  This models the server side of disposable-domain
  services: eSoft/McAfee/Google answer any algorithmically generated
  child name, typically from a ``*.zone`` wildcard record (the paper
  notes wildcard signing as the DNSSEC mitigation, Section VI-B).
* :class:`CallbackZone` — delegates the answer decision to a callable,
  used by tests and by generator-backed experiment zones.

Zones optionally carry DNSSEC signing state (see
:mod:`repro.dns.dnssec`).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.names import is_subdomain, normalize
from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType

__all__ = [
    "Zone",
    "StaticZone",
    "WildcardZone",
    "CallbackZone",
    "synthesize_ip",
]


def synthesize_ip(name: str, rtype: RRType, salt: str = "") -> str:
    """Deterministically derive an address for ``name``.

    Keeps the simulator reproducible without storing per-name state:
    the same name always resolves to the same address, and distinct
    names almost always resolve to distinct addresses — which matters
    because pDNS deduplication keys on (name, type, rdata).
    """
    digest = hashlib.sha256((salt + name + rtype.value).encode()).digest()
    if rtype is RRType.AAAA:
        groups = [digest[i:i + 2].hex() for i in range(0, 16, 2)]
        return ":".join(groups)
    # A record: avoid 0 and 255 in the first octet.
    octets = [digest[0] % 223 + 1, digest[1], digest[2], digest[3]]
    return ".".join(str(o) for o in octets)


class Zone:
    """Base class: an authoritative zone rooted at ``apex``."""

    def __init__(self, apex: str, signed: bool = False) -> None:
        self.apex = normalize(apex)
        self.signed = signed

    def covers(self, name: str) -> bool:
        """True if ``name`` falls inside this zone's bailiwick."""
        return is_subdomain(name, self.apex)

    def answer(self, question: Question) -> Response:  # pragma: no cover
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.apex!r})"


class StaticZone(Zone):
    """Zone answering from an explicit record set."""

    def __init__(self, apex: str, records: Optional[List[ResourceRecord]] = None,
                 signed: bool = False) -> None:
        super().__init__(apex, signed=signed)
        self._records: Dict[Tuple[str, RRType], List[ResourceRecord]] = {}
        for record in records or []:
            self.add_record(record)

    def add_record(self, record: ResourceRecord) -> None:
        if not self.covers(record.name):
            raise ValueError(f"{record.name} is outside zone {self.apex}")
        self._records.setdefault((record.name, record.rtype), []).append(record)

    def add_name(self, name: str, rtype: RRType = RRType.A, ttl: int = 3600,
                 rdata: Optional[str] = None) -> ResourceRecord:
        """Convenience: add one record, synthesising RDATA if omitted."""
        record = ResourceRecord(name, rtype, ttl, rdata or synthesize_ip(name, rtype))
        self.add_record(record)
        return record

    @property
    def record_count(self) -> int:
        return sum(len(rrset) for rrset in self._records.values())

    def names(self) -> List[str]:
        """All owner names with at least one record."""
        return sorted({name for name, _ in self._records})

    def answer(self, question: Question) -> Response:
        rrset = self._records.get((question.qname, question.qtype))
        if rrset:
            return Response(question, RCode.NOERROR, list(rrset))
        # A name that only owns a CNAME answers any type with that
        # CNAME (RFC 1034 §3.6.2); the resolver chases the target.
        if question.qtype is not RRType.CNAME:
            cname_set = self._records.get((question.qname, RRType.CNAME))
            if cname_set:
                return Response(question, RCode.NOERROR, list(cname_set))
        # Name exists under another type -> NOERROR/NODATA; else NXDOMAIN.
        name_exists = any(name == question.qname for name, _ in self._records)
        rcode = RCode.NOERROR if name_exists else RCode.NXDOMAIN
        return Response(question, rcode, [])


class WildcardZone(Zone):
    """Zone answering every child name from a wildcard template.

    ``ttl`` and the answer synthesis model the disposable services in
    Figure 6: the authoritative side happily resolves any generated
    name.  ``rdata_mode`` selects between per-name unique RDATA (the
    common case, e.g. McAfee's encodings in 127.0.0.0/16) and a single
    shared RDATA for the whole wildcard.
    """

    def __init__(self, apex: str, ttl: int = 300, rtype: RRType = RRType.A,
                 rdata_mode: str = "per-name", shared_rdata: Optional[str] = None,
                 signed: bool = False, min_depth: int = 0,
                 answer_count: int = 1) -> None:
        super().__init__(apex, signed=signed)
        if rdata_mode not in ("per-name", "shared"):
            raise ValueError(f"unknown rdata_mode: {rdata_mode!r}")
        if answer_count < 1:
            raise ValueError(f"answer_count must be >= 1, got {answer_count}")
        self.ttl = ttl
        self.rtype = rtype
        self.rdata_mode = rdata_mode
        self.shared_rdata = shared_rdata or synthesize_ip(self.apex, rtype, salt="w")
        self.min_depth = min_depth
        self.answer_count = answer_count

    def answer(self, question: Question) -> Response:
        if question.qname == self.apex:
            # The apex itself resolves too (zone operators host it).
            rdata = synthesize_ip(self.apex, question.qtype)
            return Response(question, RCode.NOERROR,
                            [ResourceRecord(self.apex, question.qtype, self.ttl, rdata)])
        if question.qtype is not self.rtype:
            return Response(question, RCode.NOERROR, [])
        extra = question.qname[: -len(self.apex) - 1]
        if extra.count(".") + 1 < self.min_depth:
            return Response(question, RCode.NXDOMAIN, [])
        if self.rdata_mode == "shared":
            records = [ResourceRecord(question.qname, question.qtype,
                                      self.ttl, self.shared_rdata)]
        else:
            # Multi-record answers (round-robin style RRsets) inflate
            # the distinct-RR population per disposable name, matching
            # the paper's RR share exceeding the name share.
            records = [
                ResourceRecord(
                    question.qname, question.qtype, self.ttl,
                    synthesize_ip(question.qname, question.qtype,
                                  salt=f"rr{i}"))
                for i in range(self.answer_count)
            ]
        return Response(question, RCode.NOERROR, records)


class CallbackZone(Zone):
    """Zone whose answers come from a user-supplied callable."""

    def __init__(self, apex: str, callback: Callable[[Question], Response],
                 signed: bool = False) -> None:
        super().__init__(apex, signed=signed)
        self._callback = callback

    def answer(self, question: Question) -> Response:
        return self._callback(question)
