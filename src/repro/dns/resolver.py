"""Recursive resolver and RDNS server cluster.

The monitored ISP serves customers from a *cluster* of recursive DNS
servers with independent caches, load-balanced across clients
(Section III-A); the paper treats the cluster as a black box and only
observes responses *below* (resolver -> client) and *above*
(authority -> resolver) it.  :class:`RdnsCluster` reproduces exactly
that structure and exposes the two observation streams through a tap
interface so the passive-DNS collector sees what the authors' taps saw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence

from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.cache import LruDnsCache
from repro.dns.message import Question, RCode, Response, RRType

__all__ = ["MonitoringTap", "RecursiveResolver", "RdnsCluster", "ResolutionResult"]


class MonitoringTap(Protocol):
    """Observer for the two monitored links of Figure 1."""

    def observe_below(self, timestamp: float, client_id: int,
                      response: Response) -> None:
        """A response sent from an RDNS server down to a client."""

    def observe_above(self, timestamp: float, response: Response) -> None:
        """A response sent from the authoritative side to an RDNS server."""


@dataclass
class ResolutionResult:
    """Outcome of one client query, for callers that want detail."""

    response: Response
    cache_hit: bool
    server_index: int
    upstream_referrals: int


class RecursiveResolver:
    """One recursive server: an LRU cache in front of the hierarchy."""

    MAX_CNAME_CHAIN = 8  # RFC 1034 loop protection

    def __init__(self, authority: AuthoritativeHierarchy, cache: LruDnsCache) -> None:
        self.authority = authority
        self.cache = cache
        self.upstream_queries = 0
        self.answered_queries = 0

    def resolve(self, question: Question, now: float) -> ResolutionResult:
        """Resolve ``question``, consulting the cache first."""
        self.answered_queries += 1
        cached = self.cache.lookup(question, now)
        if cached is not None:
            if cached:
                response = Response(question, RCode.NOERROR, cached)
            else:
                # Negative-cache hit.
                response = Response(question, RCode.NXDOMAIN, [])
            return ResolutionResult(response, cache_hit=True, server_index=-1,
                                    upstream_referrals=0)
        before = self.upstream_queries
        upstream = self._resolve_upstream(question)
        self.cache.insert(upstream, now)
        # CNAME chains make the upstream cost variable: one authority
        # round-trip for the original question plus one per chased hop.
        return ResolutionResult(upstream, cache_hit=False, server_index=-1,
                                upstream_referrals=self.upstream_queries - before)

    def _resolve_upstream(self, question: Question) -> Response:
        """Iteratively resolve, chasing CNAME chains (RFC 1034 §3.6.2).

        The returned answer section carries the whole chain — CNAME
        records plus the terminal address records — exactly what a real
        recursive puts on the wire and what a passive-DNS tap records.
        """
        upstream = self.authority.resolve(question)
        self.upstream_queries += 1
        if question.qtype is RRType.CNAME:
            return upstream
        chain = list(upstream.answers)
        current = upstream
        hops = 0
        while (current.rcode is RCode.NOERROR and current.answers
               and all(rr.rtype is RRType.CNAME for rr in current.answers)
               and hops < self.MAX_CNAME_CHAIN):
            target = current.answers[0].rdata
            current = self.authority.resolve(Question(target,
                                                      question.qtype))
            self.upstream_queries += 1
            hops += 1
            chain.extend(current.answers)
        if hops == 0:
            return upstream
        # The chain's rcode is the terminal lookup's; records collected
        # along the way all ride in the answer section.
        return Response(question, current.rcode, chain)


class RdnsCluster:
    """Cluster of recursive servers with independent caches.

    Clients are pinned to servers by ``client_id`` hash — the typical
    load-balancing configuration for large-ISP resolver farms, and the
    reason the paper must use the black-box renewal approximation for
    cache hit rates rather than per-server bookkeeping.
    """

    def __init__(self, authority: AuthoritativeHierarchy, n_servers: int = 4,
                 cache_capacity: int = 100_000, min_ttl: int = 0,
                 negative_ttl: Optional[int] = None,
                 taps: Optional[Sequence[MonitoringTap]] = None) -> None:
        if n_servers < 1:
            raise ValueError(f"n_servers must be >= 1, got {n_servers}")
        self.authority = authority
        self._servers = [
            RecursiveResolver(
                authority,
                LruDnsCache(cache_capacity, min_ttl=min_ttl,
                            negative_ttl=negative_ttl))
            for _ in range(n_servers)
        ]
        self._taps: List[MonitoringTap] = list(taps or [])

    @property
    def servers(self) -> List[RecursiveResolver]:
        return list(self._servers)

    def add_tap(self, tap: MonitoringTap) -> None:
        self._taps.append(tap)

    def server_for(self, client_id: int) -> int:
        """Deterministic client -> server pinning."""
        return client_id % len(self._servers)

    def query(self, client_id: int, question: Question,
              now: float) -> ResolutionResult:
        """Resolve a client query through its pinned server.

        Fires the monitoring taps: the below-tap sees every response
        handed to the client; the above-tap sees only the responses the
        cluster had to fetch upstream (cache misses) — matching the
        order-of-magnitude above/below volume gap of Figure 2.
        """
        index = self.server_for(client_id)
        server = self._servers[index]
        result = server.resolve(question, now)
        result.server_index = index
        for tap in self._taps:
            if not result.cache_hit:
                tap.observe_above(now, result.response)
            tap.observe_below(now, client_id, result.response)
        return result

    def total_stats(self) -> dict:
        """Aggregate cache statistics across the cluster."""
        totals = {"hits": 0, "misses": 0, "evictions": 0, "evicted_live": 0,
                  "inserts": 0, "upstream_queries": 0, "answered_queries": 0}
        for server in self._servers:
            stats = server.cache.stats
            totals["hits"] += stats.hits
            totals["misses"] += stats.misses
            totals["evictions"] += stats.evictions
            totals["evicted_live"] += stats.evicted_live
            totals["inserts"] += stats.inserts
            totals["upstream_queries"] += server.upstream_queries
            totals["answered_queries"] += server.answered_queries
        return totals
