"""Simplified DNSSEC substrate for the Section VI-B cost study.

Real DNSSEC (RFC 4033-4035) is emulated at the level the paper's
argument needs: signed zones attach RRSIG records to answers, and a
validating resolver must run one signature validation per
not-previously-validated RRSIG it receives, while also caching the
(larger) signed records.  Signatures are synthesised with SHA-256 so
validation is deterministic and cheap but still *exercised* per record.

The mitigation the paper proposes — registering disposable names under
a single signed *wildcard* so every synthesised answer shares one
signature — is modelled by :class:`ZoneSigner`'s wildcard mode: all
children of the wildcard owner carry an identical RRSIG RDATA, so a
validating resolver's validation cache collapses the per-name
validations to one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.names import is_subdomain, normalize
from repro.dns.message import ResourceRecord, Response, RRType

__all__ = [
    "RRSIG_BYTES",
    "DNSKEY_BYTES",
    "PLAIN_RR_BYTES",
    "ZoneSigner",
    "ValidatingResolverModel",
]

# Typical wire sizes (bytes) used for memory accounting.  An RSA-1024
# RRSIG plus names/rdata runs ~170 B; DNSKEY RRsets are larger.
RRSIG_BYTES = 170
DNSKEY_BYTES = 260
PLAIN_RR_BYTES = 60


def _sign(zone_key: str, owner: str, rdata: str) -> str:
    """Deterministic stand-in for an RSA signature."""
    digest = hashlib.sha256(f"{zone_key}|{owner}|{rdata}".encode()).hexdigest()
    return digest[:40]


class ZoneSigner:
    """Signs answers for a set of signed zone apexes.

    ``wildcard_zones`` lists apexes whose children are signed via a
    single wildcard record: the RRSIG owner is ``*.apex`` and the
    signed payload ignores the specific child name, so every child
    shares one signature (the Section VI-B mitigation).
    """

    def __init__(self, signed_zones: Optional[Set[str]] = None,
                 wildcard_zones: Optional[Set[str]] = None,
                 unsigned_subtrees: Optional[Set[str]] = None) -> None:
        self._signed = {normalize(z) for z in (signed_zones or set())}
        self._wildcard = {normalize(z) for z in (wildcard_zones or set())}
        self._signed |= self._wildcard
        # Subtrees explicitly left unsigned even when a signed ancestor
        # zone would otherwise cover them — used by the
        # "unsigned-disposable" reference regime of the Section VI-B
        # study (a disposable sub-zone can be delegated unsigned).
        self._unsigned = {normalize(z) for z in (unsigned_subtrees or set())}

    def is_signed(self, name: str) -> bool:
        return self._zone_for(name) is not None

    def _zone_for(self, name: str) -> Optional[str]:
        # Walk the name's suffixes from most to least specific; the
        # first hit wins, so a wildcard-signed child zone shadows its
        # signed parent (as real delegation does) and an explicitly
        # unsigned subtree shadows a signed ancestor.  O(labels), not
        # O(zones) — the signer sees every upstream record.
        parts = name.lower().rstrip(".").split(".")
        for i in range(len(parts)):
            candidate = ".".join(parts[i:])
            if candidate in self._unsigned:
                return None
            if candidate in self._signed:
                return candidate
        return None

    def _is_wildcard_signed(self, name: str, apex: str) -> bool:
        return apex in self._wildcard and normalize(name) != apex

    def sign_response(self, response: Response) -> Response:
        """Attach RRSIGs to the answers of ``response`` (in place)."""
        if not response.answers:
            return response
        signatures = []
        for rr in response.answers:
            apex = self._zone_for(rr.name)
            if apex is None:
                continue
            if self._is_wildcard_signed(rr.name, apex):
                owner = "*." + apex
                payload = "wildcard"  # name-independent -> shared RDATA
            else:
                owner = rr.name
                payload = rr.rdata
            sig_rdata = _sign("key:" + apex, owner, payload)
            signatures.append(
                ResourceRecord(owner, RRType.RRSIG, rr.ttl, sig_rdata))
        response.signatures = signatures
        return response


@dataclass
class ValidatingResolverModel:
    """Accounting model for a DNSSEC-validating resolver.

    Feed it every response the resolver fetched upstream (cache
    misses); it counts signature validations — deduplicating via a
    validation cache keyed by (owner, RDATA), which is what makes the
    wildcard mitigation effective — and tracks the extra cache bytes
    signed records demand.
    """

    validations_performed: int = 0
    validations_skipped_cached: int = 0
    signed_responses: int = 0
    unsigned_responses: int = 0
    signature_cache_bytes: int = 0
    _validated: Set[str] = field(default_factory=set)

    def process_upstream_response(self, response: Response) -> int:
        """Account one upstream response; returns validations performed."""
        if not response.signatures:
            self.unsigned_responses += 1
            return 0
        self.signed_responses += 1
        performed = 0
        for sig in response.signatures:
            cache_key = f"{sig.name}|{sig.rdata}"
            if cache_key in self._validated:
                self.validations_skipped_cached += 1
                continue
            # "Validate": recompute the digest (the crypto stand-in).
            hashlib.sha256(cache_key.encode()).digest()
            self._validated.add(cache_key)
            self.validations_performed += 1
            self.signature_cache_bytes += RRSIG_BYTES
            performed += 1
        return performed

    @property
    def distinct_signatures_cached(self) -> int:
        return len(self._validated)

    def cache_bytes_for(self, n_plain_records: int) -> int:
        """Total cache bytes: plain records + cached signatures."""
        return n_plain_records * PLAIN_RR_BYTES + self.signature_cache_bytes
