"""Stub resolver — the client side of Figure 1.

A stub forwards questions to the RDNS cluster on behalf of one client.
It optionally keeps a small local cache: the paper notes (Section II-B3)
that Jung et al.'s analytical cache model breaks down at an ISP
monitoring point partly because client machines run local caches, so
modelling them keeps the below-the-resolver traffic realistic.
"""

from __future__ import annotations

from typing import Optional

from repro.dns.cache import LruDnsCache
from repro.dns.message import Question, RCode, Response
from repro.dns.resolver import RdnsCluster

__all__ = ["StubResolver"]


class StubResolver:
    """Client-side resolver pinned to one client identity."""

    def __init__(self, client_id: int, cluster: RdnsCluster,
                 local_cache_capacity: int = 0) -> None:
        self.client_id = client_id
        self.cluster = cluster
        self._local_cache: Optional[LruDnsCache] = (
            LruDnsCache(local_cache_capacity) if local_cache_capacity > 0 else None)
        self.queries_sent = 0
        self.local_hits = 0

    def query(self, question: Question, now: float) -> Response:
        """Resolve ``question`` at time ``now``.

        A local-cache hit never reaches the RDNS cluster (and thus
        never reaches the monitoring tap) — exactly why a monitoring
        point below the recursives undercounts client lookups.
        """
        if self._local_cache is not None:
            cached = self._local_cache.lookup(question, now)
            if cached:
                self.local_hits += 1
                return Response(question, RCode.NOERROR, cached)
        self.queries_sent += 1
        result = self.cluster.query(self.client_id, question, now)
        if self._local_cache is not None and result.response.is_success:
            self._local_cache.insert(result.response, now)
        return result.response
