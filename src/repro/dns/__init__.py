"""DNS substrate: messages, zones, authoritative hierarchy, caches,
recursive resolver cluster, stub resolvers, and the DNSSEC cost model."""

from repro.dns.authority import AuthoritativeHierarchy, AuthorityStats
from repro.dns.cache import CacheEntry, CacheStats, LruDnsCache
from repro.dns.dnssec import ValidatingResolverModel, ZoneSigner
from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType
from repro.dns.resolver import RdnsCluster, RecursiveResolver, ResolutionResult
from repro.dns.stub import StubResolver
from repro.dns.wire import (NameCompressor, WireFormatError,
                            encoded_name_size, response_wire_size,
                            rr_wire_size)
from repro.dns.zone import (CallbackZone, StaticZone, WildcardZone, Zone,
                            synthesize_ip)

__all__ = [
    "AuthoritativeHierarchy", "AuthorityStats",
    "CacheEntry", "CacheStats", "LruDnsCache",
    "ValidatingResolverModel", "ZoneSigner",
    "Question", "RCode", "ResourceRecord", "Response", "RRType",
    "RdnsCluster", "RecursiveResolver", "ResolutionResult",
    "StubResolver",
    "NameCompressor", "WireFormatError", "encoded_name_size",
    "response_wire_size", "rr_wire_size",
    "CallbackZone", "StaticZone", "WildcardZone", "Zone", "synthesize_ip",
]
