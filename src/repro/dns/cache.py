"""TTL-aware fixed-capacity LRU cache for resource-record sets.

This is the component whose behaviour the whole paper hinges on: the
recursive servers cache answers by (qname, qtype); entries expire when
their TTL runs out, and — crucially for Section VI-A — a *fixed memory
allocation* means a flood of never-reused disposable entries evicts
useful records prematurely.  The cache therefore keeps detailed
statistics: hits, misses split by cause (cold / expired / evicted), and
eviction counts, so the impact studies can attribute premature
evictions to disposable churn.

An optional negative cache implements RFC 2308; the paper observes the
monitored resolvers were *not* honouring it (NXDOMAIN was ~40 % of
upstream traffic), so the simulator defaults to negative caching off.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType

__all__ = ["CacheStats", "CacheEntry", "LruDnsCache"]

_Key = Tuple[str, RRType]


@dataclass
class CacheStats:
    """Hit/miss/eviction counters, with misses split by cause."""

    hits: int = 0
    misses_cold: int = 0       # never seen (or re-query after eviction)
    misses_expired: int = 0    # entry present but TTL ran out
    evictions: int = 0         # LRU capacity evictions
    evicted_live: int = 0      # evicted while TTL still had time left
    negative_hits: int = 0
    inserts: int = 0

    @property
    def misses(self) -> int:
        return self.misses_cold + self.misses_expired

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0


@dataclass
class CacheEntry:
    """A cached answer: records + absolute expiry time."""

    answers: List[ResourceRecord]
    inserted_at: float
    expires_at: float
    hits_since_insert: int = 0

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at

    def remaining_ttl(self, now: float) -> int:
        return max(0, int(self.expires_at - now))


class LruDnsCache:
    """Fixed-capacity LRU cache keyed by (qname, qtype).

    Parameters
    ----------
    capacity:
        Maximum number of cached answers.  When full, the least
        recently used entry is evicted (the common resolver policy the
        paper assumes in Section VI-A).
    min_ttl:
        Floor applied to answer TTLs.  Some resolver implementations
        hold records for a minimum time even when the TTL is 0
        (RFC 1536 / RFC 1912 behaviour the paper cites); 0 disables.
    negative_ttl:
        TTL for cached NXDOMAIN responses; ``None`` disables negative
        caching entirely (the monitored ISP's observed behaviour).
    eviction_log_limit:
        Size bound for :attr:`live_eviction_log`, the per-victim detail
        record only the Section VI-A study consumes.  ``0`` (default)
        disables the log entirely — under sustained eviction pressure
        it otherwise grows by one tuple per live eviction for the cache
        lifetime; a positive value keeps the most recent N victims;
        ``None`` keeps every victim (the study's setting).  The
        ``evicted_live`` *counter* is always maintained regardless.
    """

    def __init__(self, capacity: int, min_ttl: int = 0,
                 negative_ttl: Optional[int] = None,
                 eviction_log_limit: Optional[int] = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if min_ttl < 0:
            raise ValueError(f"min_ttl must be >= 0, got {min_ttl}")
        if eviction_log_limit is not None and eviction_log_limit < 0:
            raise ValueError(
                f"eviction_log_limit must be >= 0, got {eviction_log_limit}")
        self.capacity = capacity
        self.min_ttl = min_ttl
        self.negative_ttl = negative_ttl
        self.stats = CacheStats()
        self._entries: "OrderedDict[_Key, CacheEntry]" = OrderedDict()
        self._negative: "OrderedDict[_Key, float]" = OrderedDict()
        # Which qnames were ever evicted with live TTL — consumed by
        # the cache-pressure impact study to attribute victims.  None
        # when disabled; a deque carries the bound when one is set.
        self._eviction_log: Optional[
            Deque[Tuple[float, str, RRType, int]]]
        if eviction_log_limit == 0:
            self._eviction_log = None
        else:
            self._eviction_log = deque(maxlen=eviction_log_limit)

    @property
    def live_eviction_log(self) -> List[Tuple[float, str, RRType, int]]:
        """Recorded live-eviction victims (empty when logging is off)."""
        return list(self._eviction_log) if self._eviction_log is not None \
            else []

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, question: Question, now: float) -> Optional[List[ResourceRecord]]:
        """Return cached answers with decayed TTLs, or ``None`` on miss."""
        key = question.key
        if self.negative_ttl is not None:
            neg_expiry = self._negative.get(key)
            if neg_expiry is not None:
                if now < neg_expiry:
                    self.stats.negative_hits += 1
                    return []
                del self._negative[key]
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses_cold += 1
            return None
        if entry.is_expired(now):
            del self._entries[key]
            self.stats.misses_expired += 1
            return None
        self._entries.move_to_end(key)
        entry.hits_since_insert += 1
        self.stats.hits += 1
        remaining = entry.remaining_ttl(now)
        return [rr.with_ttl(remaining) for rr in entry.answers]

    def insert(self, response: Response, now: float) -> None:
        """Cache ``response`` (positive answers; NXDOMAIN if enabled)."""
        key = response.question.key
        if response.is_nxdomain:
            if self.negative_ttl is not None:
                self._negative[key] = now + self.negative_ttl
                while len(self._negative) > self.capacity:
                    self._negative.popitem(last=False)
            return
        if not response.answers:
            return
        ttl = max(min(rr.ttl for rr in response.answers), self.min_ttl)
        if ttl <= 0:
            return  # TTL 0 and no floor: not cacheable
        entry = CacheEntry(list(response.answers), now, now + ttl)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        self.stats.inserts += 1
        self._evict_if_needed(now)

    def _evict_if_needed(self, now: float) -> None:
        while len(self._entries) > self.capacity:
            key, entry = self._entries.popitem(last=False)
            self.stats.evictions += 1
            if not entry.is_expired(now):
                self.stats.evicted_live += 1
                if self._eviction_log is not None:
                    self._eviction_log.append(
                        (now, key[0], key[1], entry.remaining_ttl(now)))

    def contains(self, question: Question, now: float) -> bool:
        """Non-mutating peek: is a live entry present?"""
        entry = self._entries.get(question.key)
        return entry is not None and not entry.is_expired(now)

    def flush_expired(self, now: float) -> int:
        """Drop every expired entry; returns the number removed."""
        expired = [key for key, entry in self._entries.items()
                   if entry.is_expired(now)]
        for key in expired:
            del self._entries[key]
        return len(expired)

    def utilization(self) -> float:
        return len(self._entries) / self.capacity

    def entries_snapshot(self, now: float) -> List[Tuple[str, RRType, int, int]]:
        """Live cache contents: (qname, qtype, remaining TTL, hits).

        Used by the Section VI-A occupancy analysis — what share of the
        cache is taken by entries that were never re-queried.
        """
        return [
            (name, rtype, entry.remaining_ttl(now), entry.hits_since_insert)
            for (name, rtype), entry in self._entries.items()
            if not entry.is_expired(now)
        ]
