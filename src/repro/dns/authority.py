"""Authoritative name-server hierarchy.

Models the iterative-resolution side of Figure 1: a root, TLD servers,
and per-zone authoritative servers.  The recursive resolver asks this
hierarchy on a cache miss; we account the referral chain (root -> TLD
-> zone NS) so upstream traffic volumes and latency have the right
shape, but like the paper's monitoring point we only surface the final
answer section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.names import labels, normalize
from repro.core.suffix import SuffixList, default_suffix_list
from repro.dns.message import Question, RCode, Response
from repro.dns.zone import Zone

__all__ = ["AuthorityStats", "AuthoritativeHierarchy"]


@dataclass
class AuthorityStats:
    """Counters for traffic arriving at the authoritative side."""

    queries: int = 0
    referrals: int = 0
    nxdomain: int = 0
    noerror: int = 0
    per_zone_queries: Dict[str, int] = field(default_factory=dict)

    def record(self, zone_apex: Optional[str], response: Response,
               referral_depth: int) -> None:
        self.queries += 1
        self.referrals += referral_depth
        if response.is_nxdomain:
            self.nxdomain += 1
        else:
            self.noerror += 1
        if zone_apex is not None:
            self.per_zone_queries[zone_apex] = (
                self.per_zone_queries.get(zone_apex, 0) + 1)


class AuthoritativeHierarchy:
    """Root + TLD + zone servers behind a single lookup interface.

    Zones are matched by longest-suffix: a query for
    ``x.avqs.mcafee.com`` hits the ``avqs.mcafee.com`` zone if one is
    registered, else ``mcafee.com``.  A name under no registered zone
    resolves to NXDOMAIN at the (simulated) TLD server, which is how
    typo traffic produces the paper's above-the-resolver NXDOMAIN load.
    """

    # Referral chain lengths used for latency/traffic accounting.
    _REFERRAL_DEPTH_HIT = 3      # root -> TLD -> zone NS
    _REFERRAL_DEPTH_NXDOMAIN = 2  # root -> TLD says no such delegation

    def __init__(self, suffix_list: Optional[SuffixList] = None) -> None:
        self._zones_by_apex: Dict[str, Zone] = {}
        self._suffixes = suffix_list or default_suffix_list()
        self.stats = AuthorityStats()

    def add_zone(self, zone: Zone) -> Zone:
        if zone.apex in self._zones_by_apex:
            raise ValueError(f"zone {zone.apex} already registered")
        self._zones_by_apex[zone.apex] = zone
        return zone

    def zones(self) -> List[Zone]:
        return list(self._zones_by_apex.values())

    def zone_at(self, apex: str) -> Optional[Zone]:
        """The zone registered exactly at ``apex``, if any."""
        return self._zones_by_apex.get(normalize(apex))

    def find_zone(self, qname: str) -> Optional[Zone]:
        """Longest-suffix zone match for ``qname``."""
        parts = labels(qname)
        for i in range(len(parts)):
            candidate = ".".join(parts[i:])
            zone = self._zones_by_apex.get(candidate)
            if zone is not None:
                return zone
        return None

    def resolve(self, question: Question) -> Response:
        """Answer ``question`` as the full iterative chain would."""
        zone = self.find_zone(question.qname)
        if zone is None:
            response = Response(question, RCode.NXDOMAIN, [])
            self.stats.record(None, response, self._REFERRAL_DEPTH_NXDOMAIN)
            return response
        response = zone.answer(question)
        self.stats.record(zone.apex, response, self._REFERRAL_DEPTH_HIT)
        return response

    def __contains__(self, apex: str) -> bool:
        return normalize(apex) in self._zones_by_apex

    def __len__(self) -> int:
        return len(self._zones_by_apex)
