"""Measurement analytics over fpDNS/rpDNS datasets — one module per
figure/table family of the paper's evaluation."""

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.clients import (ClientSpreadReport, clients_per_name,
                                    clients_per_name_from_digest)
from repro.analysis.chrdist import (ChrSplit, chr_cdf, chr_cdf_for_zones,
                                    chr_split, chr_split_from_digest)
from repro.analysis.dedup import DedupReport, NewRrDay, run_dedup_window
from repro.analysis.growth import GrowthPoint, GrowthSeries, growth_series
from repro.analysis.summary import (DailyTrafficReport, build_daily_report,
                                    build_daily_report_from_digest)
from repro.analysis.tail import (LOW_VOLUME_THRESHOLD, TailRow, dhr_cdf,
                                 lookup_volume_distribution,
                                 lookup_volume_tail_row, zero_dhr_tail_row)
from repro.analysis.ttl import TTL_CLAMP, TtlHistogram, disposable_ttl_histogram
from repro.analysis.volume import (ZONE_GROUPS, DayVolumeSummary, VolumeSeries,
                                   day_summary, day_summary_from_digest,
                                   hourly_volumes, hourly_volumes_from_digest,
                                   multi_day_series)

__all__ = [
    "EmpiricalCdf",
    "ClientSpreadReport", "clients_per_name", "clients_per_name_from_digest",
    "ChrSplit", "chr_cdf", "chr_cdf_for_zones", "chr_split",
    "chr_split_from_digest",
    "DedupReport", "NewRrDay", "run_dedup_window",
    "GrowthPoint", "GrowthSeries", "growth_series",
    "DailyTrafficReport", "build_daily_report",
    "build_daily_report_from_digest",
    "LOW_VOLUME_THRESHOLD", "TailRow", "dhr_cdf",
    "lookup_volume_distribution", "lookup_volume_tail_row",
    "zero_dhr_tail_row",
    "TTL_CLAMP", "TtlHistogram", "disposable_ttl_histogram",
    "ZONE_GROUPS", "DayVolumeSummary", "VolumeSeries", "day_summary",
    "day_summary_from_digest", "hourly_volumes",
    "hourly_volumes_from_digest", "multi_day_series",
]
