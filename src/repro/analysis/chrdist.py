"""Cache-hit-rate distribution analyses (Figures 4 and 7).

Figure 4 shows the CHR distribution over all RRs is a skewed linear
CDF (58 % of CHR samples below 0.5 on the paper's day).  Figure 7
splits the distribution by zone class: ~90 % of disposable CHR samples
are exactly zero while non-disposable zones keep a "natural" spread
(45 % of samples above 0.58).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.core.hitrate import HitRateTable, hit_rates_from_digest
from repro.core.interning import DayDigest
from repro.core.names import is_subdomain
from repro.core.ranking import name_matches_groups

__all__ = ["chr_cdf", "chr_cdf_for_zones", "ChrSplit", "chr_split",
           "chr_split_from_digest"]


def chr_cdf(hit_rates: HitRateTable) -> EmpiricalCdf:
    """CDF of all CHR samples for the day (Figure 4a)."""
    return EmpiricalCdf.from_samples(hit_rates.chr_values())


def chr_cdf_for_zones(hit_rates: HitRateTable,
                      zones: Iterable[str]) -> EmpiricalCdf:
    """CDF of CHR samples restricted to RRs under any of ``zones``."""
    zone_list = list(zones)
    records = hit_rates.filter(
        lambda key: any(is_subdomain(key[0], zone) for zone in zone_list))
    return EmpiricalCdf.from_samples(hit_rates.chr_values(records))


@dataclass(frozen=True)
class ChrSplit:
    """Disposable vs non-disposable CHR distributions (Figure 7)."""

    day: str
    disposable: EmpiricalCdf
    non_disposable: EmpiricalCdf

    @property
    def disposable_zero_fraction(self) -> float:
        """Paper: ~90 % of disposable CHR samples are zero."""
        return self.disposable.at(0.0)

    @property
    def non_disposable_median(self) -> float:
        return self.non_disposable.quantile(0.5)

    def non_disposable_fraction_above(self, threshold: float) -> float:
        """Paper: 45 % of non-disposable samples exceed 0.58."""
        return 1.0 - self.non_disposable.at(threshold)


def chr_split(hit_rates: HitRateTable,
              disposable_groups: Set[Tuple[str, int]]) -> ChrSplit:
    """Split the day's CHR samples by (zone, depth) disposability."""
    disposable_records = []
    other_records = []
    for record in hit_rates.records():
        if name_matches_groups(record.key[0], disposable_groups):
            disposable_records.append(record)
        else:
            other_records.append(record)
    return ChrSplit(
        day=hit_rates.day,
        disposable=EmpiricalCdf.from_samples(
            hit_rates.chr_values(disposable_records)),
        non_disposable=EmpiricalCdf.from_samples(
            hit_rates.chr_values(other_records)))


def chr_split_from_digest(digest: DayDigest,
                          disposable_groups: Set[Tuple[str, int]],
                          hit_rates: Optional[HitRateTable] = None
                          ) -> ChrSplit:
    """:func:`chr_split` over a columnar digest.

    The per-record zone-membership test becomes one memoised per-name
    mask indexed by the RR identity table; the CDFs sort their samples,
    so the result equals the legacy split.
    """
    if hit_rates is None:
        hit_rates = hit_rates_from_digest(digest)
    mask = digest.names.match_mask(disposable_groups)
    disposable_records = []
    other_records = []
    for rid, key in enumerate(digest.rr_keys):
        record = hit_rates.get(key)
        if record is None:  # pragma: no cover - digest tables carry all keys
            continue
        if mask[digest.rr_name_ids[rid]]:
            disposable_records.append(record)
        else:
            other_records.append(record)
    return ChrSplit(
        day=digest.day,
        disposable=EmpiricalCdf.from_samples(
            hit_rates.chr_values(disposable_records)),
        non_disposable=EmpiricalCdf.from_samples(
            hit_rates.chr_values(other_records)))
