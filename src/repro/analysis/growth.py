"""Growth of disposable domains across the year (Figure 13, Figure 11).

For each measurement date the miner's daily result provides the
disposable share of (a) unique queried domains, (b) unique resolved
domains, and (c) distinct resource records.  The paper reports these
growing from 23.1 % → 27.6 %, 27.6 % → 37.2 %, and 38.3 % → 65.5 %
respectively over 2011.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.ranking import DailyMiningResult
from repro.pdns.database import PdnsBackend

__all__ = ["GrowthPoint", "GrowthSeries", "StoreGrowthPoint",
           "StoreGrowthSeries", "growth_series", "store_growth_series"]


@dataclass(frozen=True)
class GrowthPoint:
    """One measurement date's disposable shares (a Figure 13 x-tick)."""

    day: str
    queried_fraction: float
    resolved_fraction: float
    rr_fraction: float
    n_disposable_zones: int
    n_disposable_2lds: int


@dataclass
class GrowthSeries:
    """The full Figure 13 series plus Figure 11 aggregates."""

    points: List[GrowthPoint]

    @property
    def first(self) -> GrowthPoint:
        return self.points[0]

    @property
    def last(self) -> GrowthPoint:
        return self.points[-1]

    def queried_growth(self) -> float:
        return self.last.queried_fraction - self.first.queried_fraction

    def resolved_growth(self) -> float:
        return self.last.resolved_fraction - self.first.resolved_fraction

    def rr_growth(self) -> float:
        return self.last.rr_fraction - self.first.rr_fraction

    def is_monotonic_increasing(self, attr: str = "resolved_fraction",
                                slack: float = 0.02) -> bool:
        """True if the series grows (allowing ``slack`` local dips, as
        in the paper's 11/29 dip)."""
        values = [getattr(point, attr) for point in self.points]
        return all(later >= earlier - slack
                   for earlier, later in zip(values, values[1:]))

    def total_distinct_zones(self) -> int:
        """Upper bound style aggregate used in Figure 11's zone count."""
        return max(point.n_disposable_zones for point in self.points)


def growth_series(results: Sequence[DailyMiningResult]) -> GrowthSeries:
    """Build the growth series from per-date mining results."""
    points = [
        GrowthPoint(
            day=result.day,
            queried_fraction=result.queried_fraction,
            resolved_fraction=result.resolved_fraction,
            rr_fraction=result.rr_fraction,
            n_disposable_zones=len(result.findings),
            n_disposable_2lds=len(result.disposable_2lds))
        for result in results
    ]
    return GrowthSeries(points=points)


# -- pDNS-DB growth (long-horizon store accounting) --------------------


@dataclass(frozen=True)
class StoreGrowthPoint:
    """One day of passive-DNS database growth."""

    day: str
    new_rrs: int
    cumulative_rrs: int
    cumulative_bytes: int


@dataclass
class StoreGrowthSeries:
    """Database size over every ingested day (Figure 5's cumulative
    twin, usable at year scale against the segmented store)."""

    points: List[StoreGrowthPoint]
    bytes_measured: bool

    @property
    def final_rows(self) -> int:
        return self.points[-1].cumulative_rrs if self.points else 0

    @property
    def final_bytes(self) -> int:
        return self.points[-1].cumulative_bytes if self.points else 0

    def doubling_days(self) -> List[str]:
        """Days on which the store at least doubled (bootstrap edge)."""
        days: List[str] = []
        previous = 0
        for point in self.points:
            if previous and point.cumulative_rrs >= 2 * previous:
                days.append(point.day)
            previous = point.cumulative_rrs
        return days


def store_growth_series(database: PdnsBackend) -> StoreGrowthSeries:
    """Cumulative store growth from the backend's per-day ledger.

    Works identically for the in-memory database and the segmented
    on-disk store; the byte column is the backend's own accounting
    (row-model vs measured — see ``bytes_measured``).  Days are the
    backend's ingested roster, sorted, including zero-new days.
    """
    per_day = database.new_records_per_day()
    total_rows = sum(per_day.values())
    total_bytes = database.storage_bytes()
    per_row = (total_bytes / total_rows) if total_rows else 0.0
    points: List[StoreGrowthPoint] = []
    cumulative = 0
    for day in sorted(database.ingested_days()):
        cumulative += per_day.get(day, 0)
        points.append(StoreGrowthPoint(
            day=day, new_rrs=per_day.get(day, 0),
            cumulative_rrs=cumulative,
            cumulative_bytes=int(cumulative * per_row)))
    return StoreGrowthSeries(
        points=points,
        bytes_measured=bool(getattr(database, "storage_is_measured",
                                    False)))
