"""Deduplication analyses over the rpDNS window (Figures 5 and 15).

Figure 5: new (never-before-seen) RRs per day over the 13-day rpDNS
window, overall and for the Google/Akamai groups — overall and Akamai
decline as the database warms up while Google keeps producing fresh
RRs.  Figure 15 repeats the series split into disposable and
non-disposable components: non-disposable new RRs collapse (13 M →
1.6 M in the paper) while disposable stays high, ending with 88 % of
all stored unique RRs disposable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.volume import ZONE_GROUPS, _in_group
from repro.core.ranking import name_matches_groups
from repro.pdns.database import PassiveDnsDatabase, PdnsBackend
from repro.pdns.records import FpDnsDataset, RRKey

__all__ = ["NewRrDay", "DedupReport", "run_dedup_window"]


@dataclass(frozen=True)
class NewRrDay:
    """New-RR counts for one ingested day."""

    day: str
    new_total: int
    new_google: int
    new_akamai: int
    new_disposable: int
    new_non_disposable: int

    @property
    def disposable_share(self) -> float:
        return self.new_disposable / self.new_total if self.new_total else 0.0


@dataclass
class DedupReport:
    """Outcome of ingesting a consecutive window into a fresh pDNS-DB."""

    days: List[NewRrDay]
    total_unique_rrs: int
    disposable_unique_rrs: int

    @property
    def disposable_fraction(self) -> float:
        """Paper: 88 % of all unique RRs after 13 days are disposable."""
        return (self.disposable_unique_rrs / self.total_unique_rrs
                if self.total_unique_rrs else 0.0)

    @property
    def first_day(self) -> NewRrDay:
        return self.days[0]

    @property
    def last_day(self) -> NewRrDay:
        return self.days[-1]

    def overall_decline(self) -> float:
        """Relative drop of daily new RRs from first to last day."""
        if not self.days or self.first_day.new_total == 0:
            return 0.0
        return 1.0 - self.last_day.new_total / self.first_day.new_total


def run_dedup_window(datasets: Sequence[FpDnsDataset],
                     disposable_groups: Set[Tuple[str, int]],
                     database: Optional[PdnsBackend] = None) -> DedupReport:
    """Ingest a consecutive day window and report new-RR dynamics.

    ``database`` may be any :class:`~repro.pdns.database.PdnsBackend`
    — the in-memory database (default) or the segmented on-disk store.
    """
    db: PdnsBackend = (database if database is not None
                       else PassiveDnsDatabase())
    days: List[NewRrDay] = []
    for dataset in datasets:
        day_keys = dataset.distinct_rrs()
        fresh = db.novel_keys(day_keys)
        db.ingest_rrs(dataset.day, day_keys)
        new_google = sum(1 for key in fresh
                         if _in_group(key[0], ZONE_GROUPS["google"]))
        new_akamai = sum(1 for key in fresh
                         if _in_group(key[0], ZONE_GROUPS["akamai"]))
        new_disposable = sum(
            1 for key in fresh
            if name_matches_groups(key[0], disposable_groups))
        days.append(NewRrDay(
            day=dataset.day, new_total=len(fresh), new_google=new_google,
            new_akamai=new_akamai, new_disposable=new_disposable,
            new_non_disposable=len(fresh) - new_disposable))
    disposable_total = sum(
        1 for key in db.iter_rr_keys()
        if name_matches_groups(key[0], disposable_groups))
    return DedupReport(days=days, total_unique_rrs=len(db),
                       disposable_unique_rrs=disposable_total)
