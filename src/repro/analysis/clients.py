"""Clients-per-name analysis.

Section I characterises disposable domains as "only queried a few
times by a handful of clients".  This module measures, from the
below-the-resolvers fpDNS stream, how many distinct clients queried
each resolved name, split by disposability — popular names are queried
by a large share of the subscriber base, disposable names by one or
two cohort members.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

import numpy as np

from repro.core.interning import DayDigest
from repro.core.numeric import is_zero
from repro.core.ranking import name_matches_groups
from repro.pdns.records import FpDnsDataset

__all__ = ["ClientSpreadReport", "clients_per_name",
           "clients_per_name_from_digest"]


@dataclass
class ClientSpreadReport:
    """Distinct-client counts per name, split by class."""

    day: str
    disposable_counts: np.ndarray
    other_counts: np.ndarray

    @property
    def disposable_median(self) -> float:
        if self.disposable_counts.size == 0:
            return 0.0
        return float(np.median(self.disposable_counts))

    @property
    def other_median(self) -> float:
        if self.other_counts.size == 0:
            return 0.0
        return float(np.median(self.other_counts))

    def disposable_handful_fraction(self, handful: int = 3) -> float:
        """Share of disposable names queried by <= ``handful`` clients."""
        if self.disposable_counts.size == 0:
            return 0.0
        return float(np.mean(self.disposable_counts <= handful))

    def spread_ratio(self) -> float:
        """Mean clients-per-name, non-disposable over disposable."""
        if (self.disposable_counts.size == 0
                or is_zero(float(self.disposable_counts.mean()))):
            return 0.0
        return float(self.other_counts.mean()
                     / self.disposable_counts.mean())


def clients_per_name(dataset: FpDnsDataset,
                     disposable_groups: Set[Tuple[str, int]]
                     ) -> ClientSpreadReport:
    """Count distinct querying clients per resolved name."""
    clients_by_name: Dict[str, Set[int]] = {}
    for entry in dataset.below:
        if not entry.is_answer or entry.client_id is None:
            continue
        clients_by_name.setdefault(entry.qname, set()).add(entry.client_id)
    disposable = []
    other = []
    for name, clients in clients_by_name.items():
        if name_matches_groups(name, disposable_groups):
            disposable.append(len(clients))
        else:
            other.append(len(clients))
    return ClientSpreadReport(
        day=dataset.day,
        disposable_counts=np.array(sorted(disposable), dtype=int),
        other_counts=np.array(sorted(other), dtype=int))


def clients_per_name_from_digest(digest: DayDigest,
                                 disposable_groups: Set[Tuple[str, int]]
                                 ) -> ClientSpreadReport:
    """:func:`clients_per_name` over a columnar digest.

    Distinct (name, client) pairs come from one ``np.unique`` over the
    packed id columns and the disposable split from the memoised
    per-name match mask; the reported count arrays are sorted either
    way, so the result compares equal to the legacy report.
    """
    name_ids, counts = digest.client_counts_by_name()
    disposable_mask = digest.names.match_mask(disposable_groups)[name_ids]
    return ClientSpreadReport(
        day=digest.day,
        disposable_counts=np.sort(counts[disposable_mask]).astype(int),
        other_counts=np.sort(counts[~disposable_mask]).astype(int))
