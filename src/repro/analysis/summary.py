"""One-call daily traffic report.

Aggregates every per-day statistic the paper's Section III surveys —
volumes above/below, NXDOMAIN split, population sizes, long-tail
fractions, CHR spread, Google/Akamai shares, top zones by lookup
volume — into a single renderable object.  This is the "panoramic view
of real-world DNS messages" (Section III-C) as a reusable report,
optionally annotated with the miner's disposable shares.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.tail import LOW_VOLUME_THRESHOLD
from repro.analysis.volume import (DayVolumeSummary, day_summary,
                                   day_summary_from_digest)
from repro.core.hitrate import (HitRateTable, compute_hit_rates,
                                hit_rates_from_digest)
from repro.core.interning import DayDigest
from repro.core.ranking import name_matches_groups
from repro.core.suffix import SuffixList, default_suffix_list
from repro.pdns.records import FpDnsDataset
from repro.textutil import format_kv, format_percent, format_table

__all__ = ["DailyTrafficReport", "build_daily_report",
           "build_daily_report_from_digest"]


@dataclass
class DailyTrafficReport:
    """Everything Section III measures about one day, in one object."""

    day: str
    volumes: DayVolumeSummary
    queried_domains: int
    resolved_domains: int
    distinct_rrs: int
    low_volume_tail_fraction: float
    zero_dhr_fraction: float
    chr_median: float
    top_zones: List[Tuple[str, int]]          # (2LD, lookup volume)
    disposable_queried_fraction: Optional[float] = None
    disposable_resolved_fraction: Optional[float] = None
    disposable_rr_fraction: Optional[float] = None

    def render(self) -> str:
        pairs = [
            ("answers below / above the resolvers",
             f"{self.volumes.below_total:,} / {self.volumes.above_total:,} "
             f"(ratio {self.volumes.above_below_ratio:.2f})"),
            ("NXDOMAIN share below / above",
             f"{format_percent(self.volumes.nxdomain_share_below)} / "
             f"{format_percent(self.volumes.nxdomain_share_above)}"),
            ("distinct queried / resolved names",
             f"{self.queried_domains:,} / {self.resolved_domains:,}"),
            ("distinct resource records", f"{self.distinct_rrs:,}"),
            (f"RRs with < {LOW_VOLUME_THRESHOLD} lookups",
             format_percent(self.low_volume_tail_fraction)),
            ("RRs with zero domain hit rate",
             format_percent(self.zero_dhr_fraction)),
            ("median cache hit rate sample", f"{self.chr_median:.3f}"),
            ("google+akamai share of below traffic",
             format_percent(self.volumes.google_akamai_share_below)),
        ]
        if self.disposable_resolved_fraction is not None:
            pairs.extend([
                ("disposable share of queried names",
                 format_percent(self.disposable_queried_fraction or 0.0)),
                ("disposable share of resolved names",
                 format_percent(self.disposable_resolved_fraction)),
                ("disposable share of distinct RRs",
                 format_percent(self.disposable_rr_fraction or 0.0)),
            ])
        header = format_kv(pairs, title=f"Daily traffic report — {self.day}")
        zones = format_table(["top 2LD zones by lookups", "volume"],
                             self.top_zones)
        return header + "\n\n" + zones


def build_daily_report(dataset: FpDnsDataset,
                       hit_rates: Optional[HitRateTable] = None,
                       disposable_groups: Optional[Set[Tuple[str, int]]] = None,
                       suffix_list: Optional[SuffixList] = None,
                       top_n: int = 10) -> DailyTrafficReport:
    """Compute the full report for one fpDNS day."""
    if hit_rates is None:
        hit_rates = compute_hit_rates(dataset)
    suffixes = suffix_list or default_suffix_list()

    lookup_counts = hit_rates.lookup_counts()
    low_tail = (float(np.mean(lookup_counts < LOW_VOLUME_THRESHOLD))
                if lookup_counts.size else 0.0)

    # Top 2LDs by below-lookup volume.
    per_2ld: Dict[str, int] = {}
    for entry in dataset.below:
        if not entry.is_answer:
            continue
        two_ld = suffixes.effective_2ld(entry.qname)
        if two_ld is None:
            continue
        per_2ld[two_ld] = per_2ld.get(two_ld, 0) + 1
    top_zones = sorted(per_2ld.items(), key=lambda kv: -kv[1])[:top_n]

    queried = dataset.queried_domains()
    resolved = dataset.resolved_domains()
    rrs = dataset.distinct_rrs()

    disposable_queried = disposable_resolved = disposable_rr = None
    if disposable_groups is not None:
        disposable_queried = (sum(
            1 for name in queried
            if name_matches_groups(name, disposable_groups))
            / len(queried)) if queried else 0.0
        disposable_resolved = (sum(
            1 for name in resolved
            if name_matches_groups(name, disposable_groups))
            / len(resolved)) if resolved else 0.0
        disposable_rr = (sum(
            1 for (name, _, _) in rrs
            if name_matches_groups(name, disposable_groups))
            / len(rrs)) if rrs else 0.0

    return DailyTrafficReport(
        day=dataset.day,
        volumes=day_summary(dataset),
        queried_domains=len(queried),
        resolved_domains=len(resolved),
        distinct_rrs=len(rrs),
        low_volume_tail_fraction=low_tail,
        zero_dhr_fraction=hit_rates.zero_dhr_fraction(),
        chr_median=hit_rates.chr_median(),
        top_zones=top_zones,
        disposable_queried_fraction=disposable_queried,
        disposable_resolved_fraction=disposable_resolved,
        disposable_rr_fraction=disposable_rr)


def _top_zones_from_digest(digest: DayDigest, suffixes: SuffixList,
                           top_n: int) -> List[Tuple[str, int]]:
    """Top effective-2LDs by below answer volume, digest-side.

    Replicates the legacy dict accumulation exactly, including the
    tie-break: ``sorted`` is stable, so equal-volume zones keep their
    first-seen order among the below answer entries.  The first-seen
    order is recovered with ``np.unique(return_index=True)`` over the
    per-entry zone ids.
    """
    e2ld_ids, zones = digest.names.effective_2ld_ids(suffixes)
    below = digest.below
    entry_zone_ids = e2ld_ids[below.name_ids[below.answer_mask]]
    entry_zone_ids = entry_zone_ids[entry_zone_ids >= 0]
    if entry_zone_ids.size == 0:
        return []
    zone_ids, first_positions = np.unique(entry_zone_ids, return_index=True)
    counts = np.bincount(entry_zone_ids, minlength=len(zones))
    first_seen_order = zone_ids[np.argsort(first_positions, kind="stable")]
    per_2ld = [(zones[int(zid)], int(counts[zid]))
               for zid in first_seen_order]
    return sorted(per_2ld, key=lambda kv: -kv[1])[:top_n]


def build_daily_report_from_digest(
        digest: DayDigest,
        hit_rates: Optional[HitRateTable] = None,
        disposable_groups: Optional[Set[Tuple[str, int]]] = None,
        suffix_list: Optional[SuffixList] = None,
        top_n: int = 10) -> DailyTrafficReport:
    """:func:`build_daily_report` over a columnar digest.

    All population counts, the top-zone table and the disposable
    shares come from numpy reductions over the digest columns; output
    is equal to the legacy report on the same day.
    """
    if hit_rates is None:
        hit_rates = hit_rates_from_digest(digest)
    suffixes = suffix_list or default_suffix_list()

    lookup_counts = hit_rates.lookup_counts()
    low_tail = (float(np.mean(lookup_counts < LOW_VOLUME_THRESHOLD))
                if lookup_counts.size else 0.0)

    n_queried = int(digest.queried_name_ids().shape[0])
    n_resolved = int(digest.resolved_name_ids().shape[0])
    n_rrs = digest.distinct_rr_count()

    disposable_queried = disposable_resolved = disposable_rr = None
    if disposable_groups is not None:
        queried_hits, resolved_hits, rr_hits = (
            digest.match_counts(disposable_groups))
        disposable_queried = queried_hits / n_queried if n_queried else 0.0
        disposable_resolved = resolved_hits / n_resolved if n_resolved else 0.0
        disposable_rr = rr_hits / n_rrs if n_rrs else 0.0

    return DailyTrafficReport(
        day=digest.day,
        volumes=day_summary_from_digest(digest),
        queried_domains=n_queried,
        resolved_domains=n_resolved,
        distinct_rrs=n_rrs,
        low_volume_tail_fraction=low_tail,
        zero_dhr_fraction=hit_rates.zero_dhr_fraction(),
        chr_median=hit_rates.chr_median(),
        top_zones=_top_zones_from_digest(digest, suffixes, top_n),
        disposable_queried_fraction=disposable_queried,
        disposable_resolved_fraction=disposable_resolved,
        disposable_rr_fraction=disposable_rr)
