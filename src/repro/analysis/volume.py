"""Traffic-volume analysis (Figure 2).

Produces the hourly resource-record volumes above and below the
recursive servers, with the NXDOMAIN, Akamai and Google component
series the paper overlays, plus day-level aggregates (the
order-of-magnitude above/below gap, NXDOMAIN shares on each side).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.names import is_subdomain
from repro.dns.message import RCode
from repro.pdns.records import FpDnsDataset, FpDnsEntry

__all__ = ["ZONE_GROUPS", "VolumeSeries", "DayVolumeSummary",
           "hourly_volumes", "day_summary", "multi_day_series"]

# The paper's two reference zone groups (its footnote 1).
ZONE_GROUPS: Dict[str, Tuple[str, ...]] = {
    "google": ("google.com",),
    "akamai": ("akamai.com", "akamai.net", "akamaiedge.net", "akamaihd.net",
               "edgesuite.net", "akamaitech.net", "akadns.net", "akam.net"),
}


def _in_group(name: str, zones: Sequence[str]) -> bool:
    return any(is_subdomain(name, zone) for zone in zones)


@dataclass
class VolumeSeries:
    """Per-bin volumes for one day and one side of the resolvers."""

    day: str
    side: str                      # "below" or "above"
    bin_seconds: float
    total: np.ndarray
    nxdomain: np.ndarray
    google: np.ndarray
    akamai: np.ndarray

    def peak_bin(self) -> int:
        return int(np.argmax(self.total))

    def trough_bin(self) -> int:
        return int(np.argmin(self.total))


def hourly_volumes(dataset: FpDnsDataset, side: str = "below",
                   n_bins: int = 24,
                   day_seconds: float = 86_400.0) -> VolumeSeries:
    """Bin one stream of an fpDNS day into ``n_bins`` volume counts."""
    if side == "below":
        entries: List[FpDnsEntry] = dataset.below
    elif side == "above":
        entries = dataset.above
    else:
        raise ValueError(f"side must be 'below' or 'above', got {side!r}")

    total = np.zeros(n_bins, dtype=int)
    nxdomain = np.zeros(n_bins, dtype=int)
    google = np.zeros(n_bins, dtype=int)
    akamai = np.zeros(n_bins, dtype=int)
    if entries:
        base = min(entry.timestamp for entry in entries)
        width = day_seconds / n_bins
        for entry in entries:
            index = min(int((entry.timestamp - base) / width), n_bins - 1)
            total[index] += 1
            if entry.rcode is RCode.NXDOMAIN:
                nxdomain[index] += 1
            if _in_group(entry.qname, ZONE_GROUPS["google"]):
                google[index] += 1
            elif _in_group(entry.qname, ZONE_GROUPS["akamai"]):
                akamai[index] += 1
    return VolumeSeries(day=dataset.day, side=side,
                        bin_seconds=day_seconds / n_bins, total=total,
                        nxdomain=nxdomain, google=google, akamai=akamai)


@dataclass(frozen=True)
class DayVolumeSummary:
    """Aggregate volume facts for one day (the Figure 2 headline)."""

    day: str
    below_total: int
    above_total: int
    below_nxdomain: int
    above_nxdomain: int
    below_google: int
    below_akamai: int

    @property
    def above_below_ratio(self) -> float:
        return self.above_total / self.below_total if self.below_total else 0.0

    @property
    def nxdomain_share_below(self) -> float:
        return (self.below_nxdomain / self.below_total
                if self.below_total else 0.0)

    @property
    def nxdomain_share_above(self) -> float:
        return (self.above_nxdomain / self.above_total
                if self.above_total else 0.0)

    @property
    def google_akamai_share_below(self) -> float:
        return ((self.below_google + self.below_akamai) / self.below_total
                if self.below_total else 0.0)


def day_summary(dataset: FpDnsDataset) -> DayVolumeSummary:
    below_google = sum(1 for e in dataset.below
                       if _in_group(e.qname, ZONE_GROUPS["google"]))
    below_akamai = sum(1 for e in dataset.below
                       if _in_group(e.qname, ZONE_GROUPS["akamai"]))
    return DayVolumeSummary(
        day=dataset.day,
        below_total=dataset.below_volume(),
        above_total=dataset.above_volume(),
        below_nxdomain=dataset.nxdomain_volume_below(),
        above_nxdomain=dataset.nxdomain_volume_above(),
        below_google=below_google,
        below_akamai=below_akamai)


def multi_day_series(datasets: Iterable[FpDnsDataset]
                     ) -> List[DayVolumeSummary]:
    """Day summaries across a multi-day window (Figure 2's six days)."""
    return [day_summary(dataset) for dataset in datasets]
