"""Traffic-volume analysis (Figure 2).

Produces the hourly resource-record volumes above and below the
recursive servers, with the NXDOMAIN, Akamai and Google component
series the paper overlays, plus day-level aggregates (the
order-of-magnitude above/below gap, NXDOMAIN shares on each side).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.interning import DayDigest, StreamColumns
from repro.core.names import is_subdomain
from repro.dns.message import RCode
from repro.pdns.records import FpDnsDataset, FpDnsEntry

__all__ = ["ZONE_GROUPS", "VolumeSeries", "DayVolumeSummary",
           "hourly_volumes", "day_summary", "multi_day_series",
           "hourly_volumes_from_digest", "day_summary_from_digest"]

# The paper's two reference zone groups (its footnote 1).
ZONE_GROUPS: Dict[str, Tuple[str, ...]] = {
    "google": ("google.com",),
    "akamai": ("akamai.com", "akamai.net", "akamaiedge.net", "akamaihd.net",
               "edgesuite.net", "akamaitech.net", "akadns.net", "akam.net"),
}


def _in_group(name: str, zones: Sequence[str]) -> bool:
    return any(is_subdomain(name, zone) for zone in zones)


@dataclass
class VolumeSeries:
    """Per-bin volumes for one day and one side of the resolvers."""

    day: str
    side: str                      # "below" or "above"
    bin_seconds: float
    total: np.ndarray
    nxdomain: np.ndarray
    google: np.ndarray
    akamai: np.ndarray

    def peak_bin(self) -> int:
        return int(np.argmax(self.total))

    def trough_bin(self) -> int:
        return int(np.argmin(self.total))


def hourly_volumes(dataset: FpDnsDataset, side: str = "below",
                   n_bins: int = 24,
                   day_seconds: float = 86_400.0) -> VolumeSeries:
    """Bin one stream of an fpDNS day into ``n_bins`` volume counts."""
    if side == "below":
        entries: List[FpDnsEntry] = dataset.below
    elif side == "above":
        entries = dataset.above
    else:
        raise ValueError(f"side must be 'below' or 'above', got {side!r}")

    # Single pass over the entries: pull the three relevant columns
    # out, then bin with vectorised numpy ops (the old min() pre-pass
    # plus per-entry bucketing loop walked the list twice).
    timestamps = np.empty(len(entries), dtype=np.float64)
    is_nx = np.empty(len(entries), dtype=bool)
    in_google = np.empty(len(entries), dtype=bool)
    in_akamai = np.empty(len(entries), dtype=bool)
    for position, entry in enumerate(entries):
        timestamps[position] = entry.timestamp
        is_nx[position] = entry.rcode is RCode.NXDOMAIN
        in_google[position] = _in_group(entry.qname, ZONE_GROUPS["google"])
        in_akamai[position] = (not in_google[position]
                               and _in_group(entry.qname,
                                             ZONE_GROUPS["akamai"]))
    return _bin_volumes(dataset.day, side, n_bins, day_seconds,
                        timestamps, is_nx, in_google, in_akamai)


def _bin_volumes(day: str, side: str, n_bins: int, day_seconds: float,
                 timestamps: np.ndarray, is_nx: np.ndarray,
                 in_google: np.ndarray,
                 in_akamai: np.ndarray) -> VolumeSeries:
    """Vectorised binning shared by the entry and digest paths.

    Replicates the scalar arithmetic exactly: bin index is
    ``min(int((ts - min_ts) / width), n_bins - 1)``, evaluated in
    float64 either way.
    """
    total = np.zeros(n_bins, dtype=int)
    nxdomain = np.zeros(n_bins, dtype=int)
    google = np.zeros(n_bins, dtype=int)
    akamai = np.zeros(n_bins, dtype=int)
    if timestamps.size:
        width = day_seconds / n_bins
        index = ((timestamps - timestamps.min()) / width).astype(np.int64)
        np.minimum(index, n_bins - 1, out=index)
        total += np.bincount(index, minlength=n_bins)
        nxdomain += np.bincount(index[is_nx], minlength=n_bins)
        google += np.bincount(index[in_google], minlength=n_bins)
        akamai += np.bincount(index[in_akamai], minlength=n_bins)
    return VolumeSeries(day=day, side=side,
                        bin_seconds=day_seconds / n_bins, total=total,
                        nxdomain=nxdomain, google=google, akamai=akamai)


def _stream_group_masks(digest: DayDigest, stream: StreamColumns
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """(google, akamai) per-entry masks from memoised per-name masks,
    with the legacy elif precedence (google wins on overlap)."""
    google_names = digest.names.subdomain_mask(ZONE_GROUPS["google"])
    akamai_names = digest.names.subdomain_mask(ZONE_GROUPS["akamai"])
    in_google = google_names[stream.name_ids]
    in_akamai = akamai_names[stream.name_ids] & ~in_google
    return in_google, in_akamai


def hourly_volumes_from_digest(digest: DayDigest, side: str = "below",
                               n_bins: int = 24,
                               day_seconds: float = 86_400.0
                               ) -> VolumeSeries:
    """:func:`hourly_volumes` over a columnar digest — per-name zone
    membership is computed once per distinct name, and the binning is
    pure numpy over the digest columns."""
    if side == "below":
        stream = digest.below
    elif side == "above":
        stream = digest.above
    else:
        raise ValueError(f"side must be 'below' or 'above', got {side!r}")
    in_google, in_akamai = _stream_group_masks(digest, stream)
    return _bin_volumes(digest.day, side, n_bins, day_seconds,
                        stream.timestamps,
                        stream.rcodes == RCode.NXDOMAIN.value,
                        in_google, in_akamai)


@dataclass(frozen=True)
class DayVolumeSummary:
    """Aggregate volume facts for one day (the Figure 2 headline)."""

    day: str
    below_total: int
    above_total: int
    below_nxdomain: int
    above_nxdomain: int
    below_google: int
    below_akamai: int

    @property
    def above_below_ratio(self) -> float:
        return self.above_total / self.below_total if self.below_total else 0.0

    @property
    def nxdomain_share_below(self) -> float:
        return (self.below_nxdomain / self.below_total
                if self.below_total else 0.0)

    @property
    def nxdomain_share_above(self) -> float:
        return (self.above_nxdomain / self.above_total
                if self.above_total else 0.0)

    @property
    def google_akamai_share_below(self) -> float:
        return ((self.below_google + self.below_akamai) / self.below_total
                if self.below_total else 0.0)


def day_summary(dataset: FpDnsDataset) -> DayVolumeSummary:
    below_google = sum(1 for e in dataset.below
                       if _in_group(e.qname, ZONE_GROUPS["google"]))
    below_akamai = sum(1 for e in dataset.below
                       if _in_group(e.qname, ZONE_GROUPS["akamai"]))
    return DayVolumeSummary(
        day=dataset.day,
        below_total=dataset.below_volume(),
        above_total=dataset.above_volume(),
        below_nxdomain=dataset.nxdomain_volume_below(),
        above_nxdomain=dataset.nxdomain_volume_above(),
        below_google=below_google,
        below_akamai=below_akamai)


def day_summary_from_digest(digest: DayDigest) -> DayVolumeSummary:
    """:func:`day_summary` over a columnar digest.

    Unlike the hourly series, the summary counts google and akamai
    membership independently (no precedence), matching the legacy
    two-``sum`` form.
    """
    google_names = digest.names.subdomain_mask(ZONE_GROUPS["google"])
    akamai_names = digest.names.subdomain_mask(ZONE_GROUPS["akamai"])
    below = digest.below
    nx_value = RCode.NXDOMAIN.value
    return DayVolumeSummary(
        day=digest.day,
        below_total=int(below.timestamps.size),
        above_total=int(digest.above.timestamps.size),
        below_nxdomain=int(np.count_nonzero(below.rcodes == nx_value)),
        above_nxdomain=int(np.count_nonzero(digest.above.rcodes == nx_value)),
        below_google=int(np.count_nonzero(google_names[below.name_ids])),
        below_akamai=int(np.count_nonzero(akamai_names[below.name_ids])))


def multi_day_series(datasets: Iterable[FpDnsDataset]
                     ) -> List[DayVolumeSummary]:
    """Day summaries across a multi-day window (Figure 2's six days)."""
    return [day_summary(dataset) for dataset in datasets]
