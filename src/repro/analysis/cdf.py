"""Empirical-CDF helpers shared by the distribution analyses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["EmpiricalCdf"]


@dataclass
class EmpiricalCdf:
    """Empirical cumulative distribution of a sample."""

    values: np.ndarray  # sorted

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "EmpiricalCdf":
        values = np.sort(np.asarray(samples, dtype=float))
        return cls(values=values)

    def __len__(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        if len(self.values) == 0:
            return 0.0
        return float(np.searchsorted(self.values, x, side="right")
                     / len(self.values))

    def quantile(self, q: float) -> float:
        """Inverse CDF at ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if len(self.values) == 0:
            return 0.0
        return float(np.quantile(self.values, q))

    def evaluate(self, xs: Sequence[float]) -> np.ndarray:
        """CDF values at each point of ``xs`` (for plotting/series)."""
        xs = np.asarray(xs, dtype=float)
        if len(self.values) == 0:
            return np.zeros_like(xs)
        return np.searchsorted(self.values, xs, side="right") / len(self.values)

    def series(self, n_points: int = 11) -> list:
        """(x, CDF(x)) pairs over an even grid of the value range."""
        if len(self.values) == 0:
            return []
        lo, hi = float(self.values[0]), float(self.values[-1])
        xs = np.linspace(lo, hi, n_points)
        return list(zip(xs.tolist(), self.evaluate(xs).tolist()))
