"""TTL analysis for disposable domains (Figure 14).

The paper histograms the TTL values of disposable domains in February
vs December 2011: early in the year a large mass sits at TTL = 1 s,
by December the mode has moved to 300 s (operators learned that
near-zero TTLs get floored by resolver implementations anyway).
Values above 86 400 s are clamped into the last bucket, as in the
paper's plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.core.ranking import name_matches_groups
from repro.pdns.records import FpDnsDataset

__all__ = ["TTL_CLAMP", "TtlHistogram", "disposable_ttl_histogram"]

TTL_CLAMP = 86_400


@dataclass
class TtlHistogram:
    """TTL value -> disposable-RR count for one day."""

    day: str
    counts: Dict[int, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def fraction_at(self, ttl: int) -> float:
        return self.counts.get(ttl, 0) / self.total if self.total else 0.0

    def mode(self) -> int:
        """The most common TTL value."""
        if not self.counts:
            return 0
        return max(self.counts, key=lambda ttl: (self.counts[ttl], -ttl))

    def mean(self) -> float:
        if not self.total:
            return 0.0
        return sum(ttl * count for ttl, count in self.counts.items()) / self.total

    def log_buckets(self) -> List[Tuple[int, int]]:
        """(bucket upper bound, count) over powers of 10, for plotting."""
        bounds = [1, 10, 100, 1_000, 10_000, TTL_CLAMP]
        out = []
        for low, high in zip([0] + bounds[:-1], bounds):
            count = sum(c for ttl, c in self.counts.items()
                        if low < ttl <= high)
            out.append((high, count))
        zero = self.counts.get(0, 0)
        if zero:
            out[0] = (out[0][0], out[0][1] + zero)
        return out


def disposable_ttl_histogram(dataset: FpDnsDataset,
                             disposable_groups: Set[Tuple[str, int]]
                             ) -> TtlHistogram:
    """Histogram the authoritative TTLs of the day's disposable RRs."""
    counts: Dict[int, int] = {}
    for key, ttl in dataset.ttls_by_rr().items():
        if not name_matches_groups(key[0], disposable_groups):
            continue
        clamped = min(ttl, TTL_CLAMP)
        counts[clamped] = counts.get(clamped, 0) + 1
    return TtlHistogram(day=dataset.day, counts=counts)
