"""Long-tail analyses: lookup volume and domain hit rate (Figure 3,
Tables I and II).

The paper defines two tails over the day's resource records:

* the **lookup-volume tail** — RRs with fewer than 10 lookups per day
  (>90 % of all RRs, growing to 94 % across 2011), and
* the **zero-DHR tail** — RRs with domain hit rate exactly 0
  (89 % growing to 93 %).

Tables I and II then split each tail by disposability: what fraction
of the tail is disposable RRs, and what fraction of disposable RRs
lives in the tail (96-98 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Set, Tuple

import numpy as np

from repro.analysis.cdf import EmpiricalCdf
from repro.core.hitrate import HitRateTable, RRHitRate
from repro.core.numeric import is_zero
from repro.core.ranking import name_matches_groups
from repro.pdns.records import RRKey

__all__ = ["LOW_VOLUME_THRESHOLD", "TailRow", "lookup_volume_distribution",
           "dhr_cdf", "lookup_volume_tail_row", "zero_dhr_tail_row"]

LOW_VOLUME_THRESHOLD = 10  # "fewer than 10 lookups per day"


def lookup_volume_distribution(hit_rates: HitRateTable) -> np.ndarray:
    """Per-RR lookup volumes sorted descending (Figure 3a's curve)."""
    counts = hit_rates.lookup_counts()
    return np.sort(counts)[::-1]


def dhr_cdf(hit_rates: HitRateTable) -> EmpiricalCdf:
    """CDF of domain hit rates over all RRs (Figure 3b)."""
    return EmpiricalCdf.from_samples(hit_rates.dhr_values())


@dataclass(frozen=True)
class TailRow:
    """One row of Table I / Table II."""

    day: str
    tail_fraction: float          # share of all RRs that are in the tail
    disposable_share_of_tail: float
    disposable_in_tail_fraction: float  # share of disposable RRs in the tail
    tail_size: int
    disposable_tail_size: int
    n_rrs: int


def _tail_row(day: str, records: Sequence[RRHitRate],
              in_tail: Callable[[RRHitRate], bool],
              is_disposable: Callable[[RRKey], bool]) -> TailRow:
    n_rrs = len(records)
    tail = [record for record in records if in_tail(record)]
    disposable_tail = [record for record in tail
                       if is_disposable(record.key)]
    n_disposable = sum(1 for record in records if is_disposable(record.key))
    return TailRow(
        day=day,
        tail_fraction=len(tail) / n_rrs if n_rrs else 0.0,
        disposable_share_of_tail=(len(disposable_tail) / len(tail)
                                  if tail else 0.0),
        disposable_in_tail_fraction=(len(disposable_tail) / n_disposable
                                     if n_disposable else 0.0),
        tail_size=len(tail),
        disposable_tail_size=len(disposable_tail),
        n_rrs=n_rrs)


def lookup_volume_tail_row(hit_rates: HitRateTable,
                           disposable_groups: Set[Tuple[str, int]],
                           threshold: int = LOW_VOLUME_THRESHOLD) -> TailRow:
    """Table I row: the low-lookup-volume tail split by disposability."""
    return _tail_row(
        hit_rates.day, hit_rates.records(),
        in_tail=lambda record: record.queries_below < threshold,
        is_disposable=lambda key: name_matches_groups(key[0],
                                                      disposable_groups))


def zero_dhr_tail_row(hit_rates: HitRateTable,
                      disposable_groups: Set[Tuple[str, int]]) -> TailRow:
    """Table II row: the zero-domain-hit-rate tail split by disposability."""
    return _tail_row(
        hit_rates.day, hit_rates.records(),
        in_tail=lambda record: is_zero(record.domain_hit_rate),
        is_disposable=lambda key: name_matches_groups(key[0],
                                                      disposable_groups))
