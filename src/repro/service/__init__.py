"""Online serving layer: the high-QPS ``repro serve`` daemon.

Everything below is the *service surface* of the reproduction — the
one subpackage allowed to sit above every library layer (rule R003)
and the package library code must never import back (rule R017):

* :mod:`repro.service.engine` — the batched, vectorised
  :class:`~repro.service.engine.ClassificationEngine` with its
  (zone, depth)-keyed verdict LRU.
* :mod:`repro.service.batching` — the micro-batching queue that
  coalesces concurrent HTTP requests into one engine call.
* :mod:`repro.service.http` — the stdlib HTTP/JSON API
  (``/classify``, ``/metrics``, ``/healthz``).
* :mod:`repro.service.app` — wiring from experiment artifacts
  (simulated day + trained model) to a running daemon.
"""

from repro.service.batching import MicroBatcher
from repro.service.engine import (ClassificationEngine, EngineConfig,
                                  Verdict, VerdictCache)
from repro.service.http import ClassifyServer, make_server

__all__ = [
    "ClassificationEngine", "EngineConfig", "Verdict", "VerdictCache",
    "MicroBatcher",
    "ClassifyServer", "make_server",
]
