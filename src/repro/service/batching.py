"""Micro-batching request queue for the serving daemon.

The HTTP layer handles each request on its own thread
(``ThreadingHTTPServer``), but the engine is fastest when concurrent
lookups are coalesced into one vectorised ``classify_batch`` call.
:class:`MicroBatcher` sits between the two: request threads submit
their qnames and block; a single worker thread drains the queue,
waits one short coalescing window for stragglers, classifies the
union in one engine call, and slices the verdicts back per request.

The worker also serialises all engine access, so the engine and its
verdict cache need no locking of their own.

No explicit clock reads (the repro package bans them for determinism,
rule R001): the coalescing window is expressed purely as the timeout
of a single ``Condition.wait`` call.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.service.engine import Verdict

__all__ = ["MicroBatcher"]


class _PendingRequest:
    """One submitted request waiting for its verdicts."""

    __slots__ = ("qnames", "done", "verdicts", "error")

    def __init__(self, qnames: List[str]) -> None:
        self.qnames = qnames
        self.done = threading.Event()
        self.verdicts: Optional[List[Verdict]] = None
        self.error: Optional[BaseException] = None


class MicroBatcher:
    """Coalesces concurrent classify requests into engine batches.

    Parameters
    ----------
    classify:
        The batched classify function (one call per drained batch) —
        normally ``ClassificationEngine.classify_batch``.
    max_batch:
        Soft cap on qnames per engine call.  Whole requests are never
        split; draining stops once the cap is reached or passed.
    window_s:
        Coalescing window: after the first pending request is seen,
        the worker waits at most this long (one ``Condition.wait``
        timeout) for more arrivals before classifying.  ``0`` disables
        the wait.
    """

    def __init__(self, classify: Callable[[Sequence[str]], List[Verdict]],
                 max_batch: int = 512, window_s: float = 0.002) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self._classify = classify
        self.max_batch = max_batch
        self.window_s = window_s
        self._cond = threading.Condition()
        self._queue: Deque[_PendingRequest] = deque()
        self._closed = False
        # Counters (ints; written by the worker thread only).
        self.batches = 0
        self.requests = 0
        self.names = 0
        self.coalesced_requests = 0
        self.largest_batch = 0
        self._worker = threading.Thread(target=self._run,
                                        name="repro-serve-batcher",
                                        daemon=True)
        self._worker.start()

    # -- request side ---------------------------------------------------

    def submit(self, qnames: Sequence[str]) -> List[Verdict]:
        """Classify ``qnames``; blocks until the worker answers."""
        request = _PendingRequest(list(qnames))
        with self._cond:
            if self._closed:
                raise RuntimeError("MicroBatcher is closed")
            self._queue.append(request)
            self._cond.notify_all()
        request.done.wait()
        if request.error is not None:
            raise request.error
        assert request.verdicts is not None
        return request.verdicts

    def close(self) -> None:
        """Drain outstanding requests and stop the worker thread."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._worker.join()

    # -- worker side ----------------------------------------------------

    def _run(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._serve(batch)

    def _next_batch(self) -> Optional[List[_PendingRequest]]:
        """Block for work, coalesce briefly, and drain one batch.

        Returns ``None`` when closed and fully drained.
        """
        with self._cond:
            while not self._queue:
                if self._closed:
                    return None
                self._cond.wait()
            if self.window_s > 0 and not self._closed:
                # One bounded wait so concurrent request threads can
                # land in the same engine call.  Whatever has arrived
                # when it returns is the batch.
                self._cond.wait(timeout=self.window_s)
            batch: List[_PendingRequest] = []
            total = 0
            while self._queue and total < self.max_batch:
                request = self._queue.popleft()
                batch.append(request)
                total += len(request.qnames)
            return batch

    def _serve(self, batch: List[_PendingRequest]) -> None:
        qnames: List[str] = []
        for request in batch:
            qnames.extend(request.qnames)
        try:
            verdicts = self._classify(qnames)
            if len(verdicts) != len(qnames):
                raise RuntimeError(
                    f"classify returned {len(verdicts)} verdicts "
                    f"for {len(qnames)} qnames")
        except Exception as exc:  # propagated to every waiting caller
            for request in batch:
                request.error = exc
                request.done.set()
            return
        self.batches += 1
        self.requests += len(batch)
        self.names += len(qnames)
        self.coalesced_requests += len(batch) - 1
        self.largest_batch = max(self.largest_batch, len(qnames))
        offset = 0
        for request in batch:
            request.verdicts = verdicts[offset:offset + len(request.qnames)]
            offset += len(request.qnames)
            request.done.set()

    # -- metrics --------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {"batches": self.batches, "requests": self.requests,
                "names": self.names,
                "coalesced_requests": self.coalesced_requests,
                "largest_batch": self.largest_batch}
