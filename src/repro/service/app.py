"""Wiring: build a serving engine/daemon from experiment artifacts.

The daemon needs three artifacts: a trained model, a mining tree and a
hit-rate table.  This module sources them the same way the offline
experiments do — an :class:`~repro.experiments.context.ExperimentContext`
simulates (or cache-loads) the reference day and trains the
classifier — with an optional escape hatch to load a persisted model
(``repro-lad-tree-v1`` or the compiled form) from disk instead of
training, the production shape where the training job and the serving
fleet are different machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.classifier.compiled import CompiledLadTree, compile_lad_tree
from repro.core.classifier.persistence import load_compiled_lad_tree
from repro.experiments.context import MEDIUM, SMALL, ScaleProfile, get_context
from repro.service.engine import ClassificationEngine, EngineConfig
from repro.service.http import ClassifyServer, make_server
from repro.traffic.simulate import PAPER_DATES

__all__ = ["ServeSettings", "PROFILES", "build_engine", "build_server"]

PROFILES = {"small": SMALL, "medium": MEDIUM}


@dataclass(frozen=True)
class ServeSettings:
    """Everything ``repro serve`` needs to stand up a daemon."""

    host: str = "127.0.0.1"
    port: int = 8053
    profile: str = "small"
    model_path: Optional[str] = None
    threshold: float = 0.9
    min_group_size: int = 5
    cache_size: int = 4096
    max_batch: int = 512
    batch_window_s: float = 0.002

    def engine_config(self) -> EngineConfig:
        return EngineConfig(threshold=self.threshold,
                            min_group_size=self.min_group_size,
                            cache_size=self.cache_size)

    def scale_profile(self) -> ScaleProfile:
        if self.profile not in PROFILES:
            raise ValueError(f"unknown profile {self.profile!r}; "
                             f"expected one of {sorted(PROFILES)}")
        return PROFILES[self.profile]


def build_engine(settings: ServeSettings) -> ClassificationEngine:
    """Engine over the last paper date of the settings' profile.

    The context call simulates (or artifact-cache-loads) the calendar
    up to that day; the model comes from ``model_path`` when given,
    else from training on the context's labeled zones.
    """
    context = get_context(settings.scale_profile())
    reference_date = PAPER_DATES[-1]
    digest = context.digest(reference_date)
    model: CompiledLadTree
    if settings.model_path is not None:
        model = load_compiled_lad_tree(settings.model_path)
    else:
        model = compile_lad_tree(context.classifier())
    return ClassificationEngine.from_digest(
        digest, model, config=settings.engine_config())


def build_server(settings: ServeSettings,
                 engine: Optional[ClassificationEngine] = None
                 ) -> ClassifyServer:
    """A bound (not yet serving) daemon for ``settings``."""
    if engine is None:
        engine = build_engine(settings)
    return make_server(engine, settings.host, settings.port,
                       max_batch=settings.max_batch,
                       window_s=settings.batch_window_s)
