"""Batched, vectorised qname classification engine.

The offline pipeline answers "which (zone, depth) groups of this day
are disposable?"; the serving engine answers the online question —
"is *this qname* disposable?" — at high QPS.  One engine instance
holds:

* a :class:`~repro.core.classifier.compiled.CompiledLadTree` (the
  fitted LAD tree flattened into parallel stump arrays),
* the day's mining tree and hit-rate table, wrapped in a
  :class:`~repro.core.features.FeatureExtractor`, and
* a (zone, depth)-keyed :class:`VerdictCache` so repeat traffic
  short-circuits feature extraction entirely.

Two code paths produce :class:`Verdict` objects:

* :meth:`ClassificationEngine.classify_one` — the per-name **oracle**:
  no interning, no caching, one fresh ``depth_groups`` walk and one
  1-row ``decision_function`` call per qname.  Slow by construction;
  it defines the semantics.
* :meth:`ClassificationEngine.classify_batch` — the fast path, three
  cache levels deep.  Every qname first probes a per-qname verdict
  memo (one dict get — legal because the engine's tree, hit rates and
  model are immutable for its lifetime, so a qname's verdict can
  never change).  Missing qnames are interned through a
  :class:`~repro.core.interning.NameTable`, distinct names resolve to
  (zone, depth) group keys, the verdict cache is probed per key, and
  every *cold* qualifying group's 8-feature vector is stacked into
  one matrix scored by a single ``decision_function`` call.

The batch path returns *exactly* the oracle's verdicts (dataclass
equality, asserted while timed in ``tools/bench_serve.py``): the
compiled model scores each row independently of its batchmates, and
the sigmoid is evaluated with the same scalar ``math.exp`` in both
paths.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.classifier.compiled import CompiledLadTree
from repro.core.features import FeatureExtractor
from repro.core.hitrate import HitRateTable, hit_rates_from_digest
from repro.core.interning import DayDigest, NameTable
from repro.core.names import InvalidDomainError, label_count, normalize
from repro.core.ranking import build_tree_from_digest
from repro.core.suffix import SuffixList, default_suffix_list
from repro.core.tree import DomainNameTree

__all__ = ["EngineConfig", "Verdict", "VerdictCache",
           "ClassificationEngine"]

GroupKey = Tuple[str, int]


@dataclass(frozen=True)
class EngineConfig:
    """Serving-side tunables.

    ``threshold`` mirrors the miner's θ: a group is called disposable
    when P(disposable) ≥ θ.  ``min_group_size`` mirrors the miner's
    guard against statistically meaningless groups.  ``cache_size``
    bounds the verdict cache (LRU entries, one per (zone, depth)).
    """

    threshold: float = 0.9
    min_group_size: int = 5
    cache_size: int = 4096

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(
                f"threshold must be in (0, 1], got {self.threshold}")
        if self.min_group_size < 1:
            raise ValueError(
                f"min_group_size must be >= 1, got {self.min_group_size}")
        if self.cache_size < 1:
            raise ValueError(
                f"cache_size must be >= 1, got {self.cache_size}")


@dataclass(frozen=True)
class Verdict:
    """The engine's answer for one qname.

    ``reason`` says how the verdict was reached:

    * ``"classified"`` — the qname sits in a scorable (zone, depth)
      group; ``score``/``probability`` are the model outputs.
    * ``"zone-apex"`` — the qname *is* its own registrable domain, so
      it heads groups rather than belonging to one.
    * ``"unknown-group"`` — the loaded mining tree has no group at the
      qname's (zone, depth) position.
    * ``"small-group"`` — the group exists but is below
      ``min_group_size``; the miner would never classify it.
    * ``"no-zone"`` — the qname has no registrable parent (it is an
      effective TLD).
    * ``"invalid-name"`` — the string is not a domain name.
    """

    qname: str
    zone: str
    depth: int
    reason: str
    disposable: bool
    score: float
    probability: float
    group_size: int

    def to_json(self) -> Dict[str, object]:
        return {"qname": self.qname, "zone": self.zone,
                "depth": self.depth, "reason": self.reason,
                "disposable": self.disposable, "score": self.score,
                "probability": self.probability,
                "group_size": self.group_size}


@dataclass(frozen=True)
class _GroupVerdict:
    """Cached per-(zone, depth) outcome, shared by every member qname."""

    reason: str
    disposable: bool
    score: float
    probability: float
    group_size: int


class VerdictCache:
    """(zone, depth)-keyed LRU over :class:`_GroupVerdict` entries."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[GroupKey, _GroupVerdict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: GroupKey) -> Optional[_GroupVerdict]:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: GroupKey, verdict: _GroupVerdict) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = verdict
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept)."""
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"size": len(self._entries), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


def _probability(score: float) -> float:
    """P(disposable) from the additive score — the LogitBoost link.

    Scalar ``math.exp`` on purpose: both engine paths call this exact
    function, so a verdict's probability never depends on whether the
    score came from a 1-row or an N-row ``decision_function`` call.
    """
    z = -2.0 * score
    if z > 700.0:        # math.exp overflows past ~709
        return 0.0
    return 1.0 / (1.0 + math.exp(z))


class ClassificationEngine:
    """Online qname classifier over one day's mining state."""

    def __init__(self, model: CompiledLadTree, tree: DomainNameTree,
                 hit_rates: HitRateTable, *,
                 suffixes: Optional[SuffixList] = None,
                 config: Optional[EngineConfig] = None) -> None:
        self.config = config or EngineConfig()
        self._model = model
        self._tree = tree
        self._extractor = FeatureExtractor(tree, hit_rates)
        self._suffixes = suffixes or default_suffix_list()
        self.cache = VerdictCache(self.config.cache_size)
        # Per-qname resolution memo for the batch path (normalize +
        # effective-2LD + depth are pure string work, and live traffic
        # repeats the same names endlessly).  Bounded by periodic
        # reset: when full it is cleared outright, which keeps the
        # daemon's footprint flat without LRU bookkeeping on the
        # per-name hot path.
        self._resolve_memo: Dict[str, Tuple[str, str, int,
                                            Optional[str]]] = {}
        self._resolve_memo_limit = max(8 * self.config.cache_size, 65_536)
        # Front-line qname → Verdict memo for the batch path.  The
        # engine's tree, hit-rate table and model never change after
        # construction, so a qname's verdict is a pure function of the
        # engine — memoised verdicts can never go stale.  Same bounded
        # clear-outright policy as the resolve memo.
        self._verdict_memo: Dict[str, Verdict] = {}
        self._verdict_memo_limit = max(16 * self.config.cache_size, 65_536)
        # Monotonic counters for /metrics (ints; read without locking).
        self.single_calls = 0
        self.batch_calls = 0
        self.names_classified = 0
        self.groups_extracted = 0
        self.disposable_verdicts = 0

    @classmethod
    def from_digest(cls, digest: DayDigest, model: CompiledLadTree, *,
                    suffixes: Optional[SuffixList] = None,
                    config: Optional[EngineConfig] = None
                    ) -> "ClassificationEngine":
        """Engine over a columnar day digest: the mining tree and the
        hit-rate table both come from the digest columns, exactly as
        the daily pipeline builds them."""
        return cls(model, build_tree_from_digest(digest),
                   hit_rates_from_digest(digest),
                   suffixes=suffixes, config=config)

    # -- name resolution -----------------------------------------------

    def _resolve(self, qname: str) -> Tuple[str, str, int, Optional[str]]:
        """``(normalized, zone, depth, terminal_reason)`` for a qname.

        ``terminal_reason`` is non-``None`` when the name cannot be a
        group member (invalid / no zone / zone apex); otherwise
        ``(zone, depth)`` is a well-formed group key.
        """
        try:
            name = normalize(qname)
        except InvalidDomainError:
            return qname, "", 0, "invalid-name"
        depth = label_count(name)
        zone = self._suffixes.effective_2ld(name)
        if zone is None:
            return name, "", depth, "no-zone"
        if depth <= label_count(zone):
            return name, zone, depth, "zone-apex"
        return name, zone, depth, None

    def _resolve_cached(self, qname: str) -> Tuple[str, str, int,
                                                   Optional[str]]:
        """Memoised :meth:`_resolve` — batch path only; the oracle
        (:meth:`classify_one`) deliberately stays cache-free."""
        hit = self._resolve_memo.get(qname)
        if hit is None:
            if len(self._resolve_memo) >= self._resolve_memo_limit:
                self._resolve_memo.clear()
            hit = self._resolve(qname)
            self._resolve_memo[qname] = hit
        return hit

    def _terminal(self, qname: str, zone: str, depth: int,
                  reason: str) -> Verdict:
        return Verdict(qname=qname, zone=zone, depth=depth, reason=reason,
                       disposable=False, score=0.0, probability=0.0,
                       group_size=0)

    def _verdict(self, qname: str, zone: str, depth: int,
                 group: _GroupVerdict) -> Verdict:
        return Verdict(qname=qname, zone=zone, depth=depth,
                       reason=group.reason, disposable=group.disposable,
                       score=group.score, probability=group.probability,
                       group_size=group.group_size)

    def _score_group(self, zone: str, depth: int,
                     group: List[str]) -> _GroupVerdict:
        """Extract one group's features and score it (1-row call)."""
        features = self._extractor.features_for(zone, depth, group)
        self.groups_extracted += 1
        score = float(self._model.decision_function(
            features.vector().reshape(1, -1))[0])
        probability = _probability(score)
        return _GroupVerdict(reason="classified",
                             disposable=probability >= self.config.threshold,
                             score=score, probability=probability,
                             group_size=len(group))

    # -- the per-name oracle ---------------------------------------------

    def classify_one(self, qname: str) -> Verdict:
        """Classify one qname the slow, obvious way.

        No interning, no verdict cache: a fresh ``depth_groups`` walk
        and a 1-row model call per invocation.  This is the oracle the
        batch path is equality-tested against — and the "before" side
        of the serving benchmark.
        """
        self.single_calls += 1
        self.names_classified += 1
        name, zone, depth, terminal = self._resolve(qname)
        if terminal is not None:
            return self._terminal(name, zone, depth, terminal)
        group = self._tree.depth_groups(zone).get(depth)
        if group is None:
            return self._terminal(name, zone, depth, "unknown-group")
        if len(group) < self.config.min_group_size:
            outcome = _GroupVerdict(reason="small-group", disposable=False,
                                    score=0.0, probability=0.0,
                                    group_size=len(group))
        else:
            outcome = self._score_group(zone, depth, group)
        verdict = self._verdict(name, zone, depth, outcome)
        if verdict.disposable:
            self.disposable_verdicts += 1
        return verdict

    # -- the batched fast path ---------------------------------------------

    def classify_batch(self, qnames: Sequence[str]) -> List[Verdict]:
        """Classify a batch of qnames through the vectorised path.

        Repeat qnames are served straight from the verdict memo (one
        dict probe — the cache-warm fast path), the remainder are
        resolved once each (interning), group verdicts come from the
        LRU cache when warm, and all cold qualifying groups are scored
        by a single ``decision_function`` call.  Returns one
        :class:`Verdict` per input qname, in input order, bit-identical
        to :meth:`classify_one` on each.
        """
        self.batch_calls += 1
        self.names_classified += len(qnames)
        memo = self._verdict_memo
        out: List[Optional[Verdict]] = [None] * len(qnames)
        missing: List[int] = []
        disposable = 0
        for index, qname in enumerate(qnames):
            verdict = memo.get(qname)
            if verdict is None:
                missing.append(index)
            else:
                out[index] = verdict
                if verdict.disposable:
                    disposable += 1
        if missing:
            disposable += self._classify_missing(qnames, missing, out)
        self.disposable_verdicts += disposable
        return out  # type: ignore[return-value]  # every slot filled

    def _classify_missing(self, qnames: Sequence[str],
                          missing: List[int],
                          out: List[Optional[Verdict]]) -> int:
        """Slow half of the batch path: classify the positions of
        ``qnames`` the verdict memo could not answer, filling ``out``
        in place.  Returns the number of disposable verdicts served."""
        table = NameTable()
        name_ids = [table.intern(qnames[index]) for index in missing]

        # Resolve each distinct qname once: either a terminal verdict
        # or a (zone, depth) group key.
        resolved: List[Tuple[str, str, int, Optional[str]]] = [
            self._resolve_cached(raw) for raw in table.names]
        # Group keys whose verdict is not cached, in first-appearance
        # order (deterministic extraction order).
        pending: "OrderedDict[GroupKey, Optional[List[str]]]" = OrderedDict()
        cached: Dict[GroupKey, _GroupVerdict] = {}
        for name, zone, depth, terminal in resolved:
            if terminal is not None:
                continue
            key = (zone, depth)
            if key in cached or key in pending:
                continue
            hit = self.cache.get(key)
            if hit is not None:
                cached[key] = hit
            else:
                pending[key] = None

        if pending:
            self._score_pending(pending, cached)

        verdicts_by_id: List[Verdict] = []
        for name, zone, depth, terminal in resolved:
            if terminal is not None:
                verdicts_by_id.append(
                    self._terminal(name, zone, depth, terminal))
            else:
                verdicts_by_id.append(
                    self._verdict(name, zone, depth, cached[(zone, depth)]))
        # Memoise under the *raw* spelling (the memo key future batches
        # probe with); the verdict itself carries the normalized qname.
        memo = self._verdict_memo
        if len(memo) + len(table.names) > self._verdict_memo_limit:
            memo.clear()
        for raw, verdict in zip(table.names, verdicts_by_id):
            memo[raw] = verdict

        disposable = 0
        for position, nid in zip(missing, name_ids):
            verdict = verdicts_by_id[nid]
            out[position] = verdict
            if verdict.disposable:
                disposable += 1
        return disposable

    def _score_pending(self, pending: "OrderedDict[GroupKey, Optional[List[str]]]",
                       cached: Dict[GroupKey, _GroupVerdict]) -> None:
        """Resolve every cold group key: non-qualifying keys get their
        terminal group verdict; qualifying groups are feature-extracted
        columnarly and scored in one stacked model call."""
        groups_by_zone: Dict[str, Dict[int, List[str]]] = {}
        qualifying: List[Tuple[GroupKey, List[str]]] = []
        for key in pending:
            zone, depth = key
            zone_groups = groups_by_zone.get(zone)
            if zone_groups is None:
                zone_groups = self._tree.depth_groups(zone)
                groups_by_zone[zone] = zone_groups
            group = zone_groups.get(depth)
            if group is None:
                outcome = _GroupVerdict(reason="unknown-group",
                                        disposable=False, score=0.0,
                                        probability=0.0, group_size=0)
            elif len(group) < self.config.min_group_size:
                outcome = _GroupVerdict(reason="small-group",
                                        disposable=False, score=0.0,
                                        probability=0.0,
                                        group_size=len(group))
            else:
                qualifying.append((key, group))
                continue
            cached[key] = outcome
            self.cache.put(key, outcome)
        if not qualifying:
            return
        matrix = np.vstack([
            self._extractor.features_for(zone, depth, group).vector()
            for (zone, depth), group in qualifying])
        self.groups_extracted += len(qualifying)
        scores = self._model.decision_function(matrix)
        for ((key, group), raw_score) in zip(qualifying, scores):
            score = float(raw_score)
            probability = _probability(score)
            outcome = _GroupVerdict(
                reason="classified",
                disposable=probability >= self.config.threshold,
                score=score, probability=probability,
                group_size=len(group))
            cached[key] = outcome
            self.cache.put(key, outcome)

    # -- maintenance -------------------------------------------------------

    def clear_caches(self) -> None:
        """Forget every memoised verdict and resolution — the engine's
        cold-start state.  Counters are kept.  (Values can never go
        *stale* — the engine is immutable — so this exists for
        benchmarking cold paths and for reclaiming memory, not for
        correctness.)"""
        self.cache.clear()
        self._verdict_memo.clear()
        self._resolve_memo.clear()

    # -- metrics -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {"single_calls": self.single_calls,
                "batch_calls": self.batch_calls,
                "names_classified": self.names_classified,
                "groups_extracted": self.groups_extracted,
                "disposable_verdicts": self.disposable_verdicts}
