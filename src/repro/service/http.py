"""Stdlib HTTP/JSON API for the classification engine.

Endpoints:

* ``POST /classify`` — body ``{"qname": "x.example.com"}`` for a
  single verdict, or ``{"qnames": [...]}`` for a batch.  Both shapes
  go through the shared :class:`~repro.service.batching.MicroBatcher`,
  so concurrent requests coalesce into one vectorised engine call.
* ``GET /metrics`` — Prometheus-style text exposition of the request,
  engine, verdict-cache and batcher counters.
* ``GET /healthz`` — liveness probe.

Built on ``http.server.ThreadingHTTPServer`` only — the repo has no
web-framework dependency and the daemon must not grow one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, List, Optional, Tuple

from repro.service.batching import MicroBatcher
from repro.service.engine import ClassificationEngine

__all__ = ["ClassifyServer", "make_server", "MAX_BODY_BYTES",
           "MAX_BATCH_NAMES"]

#: Request-body size cap (bytes); larger posts get 413.
MAX_BODY_BYTES = 1_048_576

#: Per-request qname cap; larger batches get 400.
MAX_BATCH_NAMES = 10_000


class ClassifyServer(ThreadingHTTPServer):
    """Threaded HTTP server owning the engine and its micro-batcher."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 engine: ClassificationEngine, *,
                 max_batch: int = 512, window_s: float = 0.002) -> None:
        super().__init__(address, _ClassifyHandler)
        self.engine = engine
        self.batcher = MicroBatcher(engine.classify_batch,
                                    max_batch=max_batch, window_s=window_s)
        self._counter_lock = threading.Lock()
        self._requests: Dict[str, int] = {}
        self._errors = 0

    def count_request(self, endpoint: str) -> None:
        with self._counter_lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    def count_error(self) -> None:
        with self._counter_lock:
            self._errors += 1

    def request_counts(self) -> Tuple[Dict[str, int], int]:
        with self._counter_lock:
            return dict(self._requests), self._errors

    def close(self) -> None:
        """Stop accepting, drain the batcher, release the socket."""
        self.shutdown()
        self.batcher.close()
        self.server_close()

    # -- metrics rendering ----------------------------------------------

    def render_metrics(self) -> str:
        """The Prometheus text exposition for ``GET /metrics``."""
        requests, errors = self.request_counts()
        lines: List[str] = [
            "# HELP repro_serve_requests_total "
            "HTTP requests handled, by endpoint.",
            "# TYPE repro_serve_requests_total counter",
        ]
        for endpoint in sorted(requests):
            lines.append(f'repro_serve_requests_total'
                         f'{{endpoint="{endpoint}"}} {requests[endpoint]}')
        lines.append("# HELP repro_serve_request_errors_total "
                     "Requests answered with a 4xx/5xx status.")
        lines.append("# TYPE repro_serve_request_errors_total counter")
        lines.append(f"repro_serve_request_errors_total {errors}")
        gauges = {"repro_serve_verdict_cache_size":
                  ("Resident verdict-cache entries.",
                   self.engine.cache.stats()["size"])}
        counters = {}
        for name, value in self.engine.cache.stats().items():
            if name in ("size", "capacity"):
                continue
            counters[f"repro_serve_verdict_cache_{name}_total"] = (
                f"Verdict cache {name}.", value)
        for name, value in self.engine.stats().items():
            counters[f"repro_serve_engine_{name}_total"] = (
                f"Engine {name.replace('_', ' ')}.", value)
        for name, value in self.batcher.stats().items():
            counters[f"repro_serve_batcher_{name}_total"] = (
                f"Micro-batcher {name.replace('_', ' ')}.", value)
        for name, (help_text, value) in sorted(counters.items()):
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {value}")
        for name, (help_text, value) in sorted(gauges.items()):
            lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {value}")
        return "\n".join(lines) + "\n"


class _ClassifyHandler(BaseHTTPRequestHandler):
    """Request handler; all state lives on the :class:`ClassifyServer`."""

    server: ClassifyServer
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args: object) -> None:
        """Silence per-request stderr logging (the daemon serves QPS,
        not logs; observability goes through /metrics)."""

    def _send(self, status: int, body: bytes, content_type: str) -> None:
        if status >= 400:
            self.server.count_error()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload: object) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"),
                   "application/json")

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    # -- GET ------------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self.server.count_request("/healthz")
            self._send_json(200, {"status": "ok"})
        elif self.path == "/metrics":
            self.server.count_request("/metrics")
            self._send(200, self.server.render_metrics().encode("utf-8"),
                       "text/plain; version=0.0.4")
        else:
            self._send_error_json(404, f"unknown path {self.path!r}")

    # -- POST /classify --------------------------------------------------

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send_error_json(400, "invalid Content-Length")
            return None
        if length <= 0:
            self._send_error_json(400, "missing request body")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(length)

    def _parse_qnames(self, body: bytes) -> Optional[Tuple[List[str], bool]]:
        """``(qnames, is_batch)`` from the request document, or
        ``None`` after a 400 has been sent."""
        try:
            document = json.loads(body)
        except ValueError as exc:   # includes JSONDecodeError/Unicode
            self._send_error_json(400, f"invalid JSON body: {exc}")
            return None
        if not isinstance(document, dict):
            self._send_error_json(400, "request body must be a JSON object")
            return None
        has_single = "qname" in document
        has_batch = "qnames" in document
        if has_single == has_batch:
            self._send_error_json(
                400, "provide exactly one of 'qname' or 'qnames'")
            return None
        if has_single:
            qname = document["qname"]
            if not isinstance(qname, str):
                self._send_error_json(400, "'qname' must be a string")
                return None
            return [qname], False
        qnames = document["qnames"]
        if (not isinstance(qnames, list)
                or any(not isinstance(item, str) for item in qnames)):
            self._send_error_json(400, "'qnames' must be a list of strings")
            return None
        if len(qnames) > MAX_BATCH_NAMES:
            self._send_error_json(
                400, f"batch exceeds {MAX_BATCH_NAMES} qnames")
            return None
        return qnames, True

    def do_POST(self) -> None:
        if self.path != "/classify":
            self._send_error_json(404, f"unknown path {self.path!r}")
            return
        self.server.count_request("/classify")
        body = self._read_body()
        if body is None:
            return
        parsed = self._parse_qnames(body)
        if parsed is None:
            return
        qnames, is_batch = parsed
        verdicts = self.server.batcher.submit(qnames)
        if is_batch:
            self._send_json(200, {"verdicts": [verdict.to_json()
                                               for verdict in verdicts]})
        else:
            self._send_json(200, verdicts[0].to_json())


def make_server(engine: ClassificationEngine, host: str = "127.0.0.1",
                port: int = 0, *, max_batch: int = 512,
                window_s: float = 0.002) -> ClassifyServer:
    """Bind a :class:`ClassifyServer`; ``port=0`` picks an ephemeral
    port (read it back from ``server.server_address``)."""
    return ClassifyServer((host, port), engine,
                          max_batch=max_batch, window_s=window_s)
