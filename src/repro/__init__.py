"""repro: reproduction of "DNS Noise: Measuring the Pervasiveness of
Disposable Domains in Modern DNS Traffic" (DSN 2014).

Subpackages
-----------
- :mod:`repro.core` — the disposable-zone mining system (the paper's
  contribution): domain name tree, features, classifiers, Algorithm 1.
- :mod:`repro.dns` — DNS substrate: authoritative hierarchy, TTL-aware
  LRU caches, recursive resolver cluster, stub resolvers, DNSSEC model.
- :mod:`repro.traffic` — synthetic ISP workload standing in for the
  paper's Comcast traces.
- :mod:`repro.pdns` — passive-DNS collection (fpDNS/rpDNS) and database.
- :mod:`repro.analysis` — the measurement analytics behind each figure.
- :mod:`repro.impact` — Section VI impact studies (cache, DNSSEC, pDNS).
- :mod:`repro.experiments` — per-figure/table experiment runners.
"""

__all__ = ["__version__"]

__version__ = "1.0.0"
