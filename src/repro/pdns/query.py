"""Forensic query interface over the passive-DNS database.

Section VI-C motivates pDNS-DBs as the tool behind incident forensics
(Aurora, RSA, Stuxnet, Flame investigations) and domain-reputation
systems: given an indicator — a name or an address — an analyst pulls
its resolution history.  :class:`PdnsQueryIndex` builds the two
inverted indexes such lookups need (name → records, RDATA → records)
plus a zone index for "everything under this apex", and exposes the
latency-relevant statistic the paper worries about: how much bigger
disposable churn makes those indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.names import labels
from repro.dns.message import RRType
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.records import RpDnsEntry

__all__ = ["IndexStats", "PdnsQueryIndex"]


@dataclass(frozen=True)
class IndexStats:
    """Size accounting for the query indexes."""

    records: int
    distinct_names: int
    distinct_rdata: int
    distinct_zones: int


class PdnsQueryIndex:
    """Inverted indexes over a :class:`PassiveDnsDatabase` snapshot.

    The index is built once from the database's current contents;
    rebuild after further ingestion.
    """

    def __init__(self, database: PassiveDnsDatabase) -> None:
        self._by_name: Dict[str, List[RpDnsEntry]] = {}
        self._by_rdata: Dict[str, List[RpDnsEntry]] = {}
        self._names_by_zone: Dict[str, Set[str]] = {}
        for entry in database.entries():
            self._by_name.setdefault(entry.qname, []).append(entry)
            self._by_rdata.setdefault(entry.rdata, []).append(entry)
            parts = labels(entry.qname)
            for i in range(1, len(parts)):
                zone = ".".join(parts[i:])
                self._names_by_zone.setdefault(zone, set()).add(entry.qname)

    # -- lookups ------------------------------------------------------------

    def history_for_name(self, name: str) -> List[RpDnsEntry]:
        """All records ever observed for ``name``, oldest first."""
        records = self._by_name.get(name.lower().rstrip("."), [])
        return sorted(records, key=lambda e: (e.first_seen, e.rdata))

    def names_for_rdata(self, rdata: str) -> List[str]:
        """Every name that ever resolved to ``rdata`` — the classic
        pivot when an analyst holds a malicious IP."""
        return sorted({entry.qname for entry in self._by_rdata.get(rdata, [])})

    def names_under_zone(self, zone: str) -> List[str]:
        """Every stored name below ``zone`` (strict descendants)."""
        return sorted(self._names_by_zone.get(zone.lower().rstrip("."),
                                              set()))

    def first_seen(self, name: str) -> Optional[str]:
        """Earliest first-seen day across the name's records."""
        history = self.history_for_name(name)
        return history[0].first_seen if history else None

    def cooccurring_names(self, name: str) -> List[str]:
        """Names sharing any RDATA with ``name`` (infrastructure
        overlap, the reputation-system primitive)."""
        related: Set[str] = set()
        for record in self.history_for_name(name):
            related.update(self.names_for_rdata(record.rdata))
        related.discard(name.lower().rstrip("."))
        return sorted(related)

    # -- accounting ----------------------------------------------------------

    def stats(self) -> IndexStats:
        return IndexStats(
            records=sum(len(v) for v in self._by_name.values()),
            distinct_names=len(self._by_name),
            distinct_rdata=len(self._by_rdata),
            distinct_zones=len(self._names_by_zone))
