"""Forensic query interface over the passive-DNS database.

Section VI-C motivates pDNS-DBs as the tool behind incident forensics
(Aurora, RSA, Stuxnet, Flame investigations) and domain-reputation
systems: given an indicator — a name or an address — an analyst pulls
its resolution history.  :class:`PdnsQueryIndex` builds the two
inverted indexes such lookups need (name → records, RDATA → records)
plus a zone index for "everything under this apex", and exposes the
latency-relevant statistic the paper worries about: how much bigger
disposable churn makes those indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.records import RpDnsEntry

__all__ = ["IndexStats", "PdnsQueryIndex"]


@dataclass(frozen=True)
class IndexStats:
    """Size accounting for the query indexes."""

    records: int
    distinct_names: int
    distinct_rdata: int
    distinct_zones: int


class PdnsQueryIndex:
    """Query interface over a :class:`PassiveDnsDatabase`.

    The database maintains the inverted indexes (name → records,
    RDATA → records, zone → names) incrementally as records are
    ingested, so this view never re-scans the full table: it stays
    current after further ingestion with no rebuild.
    """

    def __init__(self, database: PassiveDnsDatabase) -> None:
        self._database = database

    # -- lookups ------------------------------------------------------------

    def history_for_name(self, name: str) -> List[RpDnsEntry]:
        """All records ever observed for ``name``, oldest first."""
        records = self._database.entries_for_name(name.lower().rstrip("."))
        return sorted(records, key=lambda e: (e.first_seen, e.rdata))

    def names_for_rdata(self, rdata: str) -> List[str]:
        """Every name that ever resolved to ``rdata`` — the classic
        pivot when an analyst holds a malicious IP."""
        return sorted({entry.qname
                       for entry in self._database.entries_for_rdata(rdata)})

    def names_under_zone(self, zone: str) -> List[str]:
        """Every stored name below ``zone`` (strict descendants)."""
        return sorted(
            self._database.names_under_zone(zone.lower().rstrip(".")))

    def first_seen(self, name: str) -> Optional[str]:
        """Earliest first-seen day across the name's records."""
        history = self.history_for_name(name)
        return history[0].first_seen if history else None

    def cooccurring_names(self, name: str) -> List[str]:
        """Names sharing any RDATA with ``name`` (infrastructure
        overlap, the reputation-system primitive)."""
        related: Set[str] = set()
        for record in self.history_for_name(name):
            related.update(self.names_for_rdata(record.rdata))
        related.discard(name.lower().rstrip("."))
        return sorted(related)

    # -- accounting ----------------------------------------------------------

    def stats(self) -> IndexStats:
        records, names, rdata, zones = self._database.index_stats()
        return IndexStats(records=records, distinct_names=names,
                          distinct_rdata=rdata, distinct_zones=zones)
