"""Passive-DNS database (pDNS-DB) with rpDNS deduplication.

Ingesting daily fpDNS datasets, the database keeps every *distinct*
successful resource record with its first-seen day — the paper's rpDNS
dataset — and accounts storage growth.  Section VI-C's mitigation is
also implemented: given the miner's (zone, depth) outputs, disposable
records can be collapsed onto wildcard rows
(``1022vr5.dns.xx.fbcdn.net`` -> ``*.dns.xx.fbcdn.net``), shrinking the
store by orders of magnitude while preserving the forensic signal that
the zone was active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, Iterable, Iterator, List, Optional, Protocol,
                    Set, Tuple, runtime_checkable)

from repro.core.groups import matching_group_zone
from repro.core.interning import DayDigest
from repro.core.names import labels, parent
from repro.dns.message import RRType
from repro.pdns.records import FpDnsDataset, RpDnsEntry, RRKey

__all__ = ["IngestReport", "PassiveDnsDatabase", "PdnsBackend",
           "wildcard_name"]

# Rough per-row storage cost, matching the paper's seven-to-nine GB for
# a few hundred million rows (~40-60 B of name + type + rdata + date).
ROW_BYTES = 48


def wildcard_name(name: str) -> str:
    """Replace the leftmost label of ``name`` with ``*``."""
    rest = parent(name)
    if rest is None:
        return "*"
    return "*." + rest


@runtime_checkable
class PdnsBackend(Protocol):
    """What the analyses need from a passive-DNS database.

    Both :class:`PassiveDnsDatabase` (in-memory) and
    :class:`~repro.pdns.store.SegmentedPdnsStore` (on-disk segments)
    satisfy this, so the dedup window, the Section VI-C storage study
    and the growth series accept either backend interchangeably.
    """

    def ingest_rrs(self, day: str,
                   rr_keys: Iterable[RRKey]) -> "IngestReport": ...

    def novel_keys(self, rr_keys: Iterable[RRKey]) -> List[RRKey]: ...

    def first_seen(self, key: RRKey) -> Optional[str]: ...

    def iter_rr_keys(self) -> Iterator[RRKey]: ...

    def new_records_per_day(self) -> Dict[str, int]: ...

    def ingested_days(self) -> List[str]: ...

    def storage_bytes(self) -> int: ...

    def wildcard_aggregated_size(
            self, disposable_groups: Set[Tuple[str, int]]) -> int: ...

    def __len__(self) -> int: ...


@dataclass
class IngestReport:
    """Summary of one day's ingestion."""

    day: str
    total_records_seen: int
    new_records: int
    duplicate_records: int

    @property
    def dedup_ratio(self) -> float:
        if not self.total_records_seen:
            return 0.0
        return self.new_records / self.total_records_seen


class PassiveDnsDatabase:
    """Append-only store of distinct RRs with first-seen tracking."""

    #: ``storage_bytes`` is the paper's 48-B/row model, not a
    #: measurement (the segmented store reports real on-disk bytes).
    storage_is_measured = False

    def __init__(self) -> None:
        self._first_seen: Dict[RRKey, str] = {}
        self._new_per_day: Dict[str, int] = {}
        self._ingest_order: List[str] = []
        # Forensic query indexes (name -> records, RDATA -> records,
        # zone -> descendant names), maintained incrementally as new
        # records arrive so lookups never re-scan the full table.
        self._entries_by_name: Dict[str, List[RpDnsEntry]] = {}
        self._entries_by_rdata: Dict[str, List[RpDnsEntry]] = {}
        self._names_by_zone: Dict[str, Set[str]] = {}

    # -- ingestion -----------------------------------------------------

    def ingest_day(self, dataset: FpDnsDataset) -> IngestReport:
        """Ingest one fpDNS day; duplicates (already-known RRs) are
        counted but not stored again."""
        return self.ingest_rrs(dataset.day, dataset.distinct_rrs())

    def ingest_digest(self, digest: DayDigest) -> IngestReport:
        """Ingest a columnar day digest (same record set as
        :meth:`ingest_day`, in deterministic RR-id order)."""
        return self.ingest_rrs(digest.day, digest.distinct_rr_keys_ordered())

    def ingest_rrs(self, day: str, rr_keys: Iterable[RRKey]) -> IngestReport:
        """Ingest an arbitrary set of RR identity triples for ``day``."""
        total = 0
        new = 0
        for key in rr_keys:
            total += 1
            if key not in self._first_seen:
                self._first_seen[key] = day
                new += 1
                self._index_record(RpDnsEntry(key[0], key[1], key[2], day))
        self._new_per_day[day] = self._new_per_day.get(day, 0) + new
        if day not in self._ingest_order:
            self._ingest_order.append(day)
        return IngestReport(day=day, total_records_seen=total,
                            new_records=new, duplicate_records=total - new)

    def _index_record(self, entry: RpDnsEntry) -> None:
        self._entries_by_name.setdefault(entry.qname, []).append(entry)
        self._entries_by_rdata.setdefault(entry.rdata, []).append(entry)
        parts = labels(entry.qname)
        for i in range(1, len(parts)):
            zone = ".".join(parts[i:])
            self._names_by_zone.setdefault(zone, set()).add(entry.qname)

    # -- queries -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._first_seen)

    def __contains__(self, key: RRKey) -> bool:
        return key in self._first_seen

    def first_seen(self, key: RRKey) -> Optional[str]:
        return self._first_seen.get(key)

    def entries(self) -> List[RpDnsEntry]:
        """The full rpDNS dataset (materialised; prefer
        :meth:`iter_entries` in hot paths)."""
        return list(self.iter_entries())

    def iter_entries(self) -> Iterator[RpDnsEntry]:
        """The full rpDNS dataset, streamed without a list copy."""
        for (name, rtype, rdata), day in self._first_seen.items():
            yield RpDnsEntry(name, rtype, rdata, day)

    def rr_keys(self) -> List[RRKey]:
        """All stored RR keys (materialised; prefer
        :meth:`iter_rr_keys` in hot paths)."""
        return list(self._first_seen)

    def iter_rr_keys(self) -> Iterator[RRKey]:
        """All stored RR keys, streamed without a list copy."""
        return iter(self._first_seen)

    def novel_keys(self, rr_keys: Iterable[RRKey]) -> List[RRKey]:
        """The subset of ``rr_keys`` not yet stored, input order kept
        (duplicates within the input stay duplicated)."""
        return [key for key in rr_keys if key not in self._first_seen]

    # -- incremental query indexes --------------------------------------

    def entries_for_name(self, name: str) -> List[RpDnsEntry]:
        """Stored records owned by ``name`` (ingest order)."""
        return list(self._entries_by_name.get(name, ()))

    def entries_for_rdata(self, rdata: str) -> List[RpDnsEntry]:
        """Stored records carrying ``rdata`` (ingest order)."""
        return list(self._entries_by_rdata.get(rdata, ()))

    def names_under_zone(self, zone: str) -> Set[str]:
        """Distinct stored names strictly below ``zone``."""
        return set(self._names_by_zone.get(zone, ()))

    def index_stats(self) -> Tuple[int, int, int, int]:
        """(records, distinct names, distinct RDATA, distinct zones)."""
        return (len(self._first_seen), len(self._entries_by_name),
                len(self._entries_by_rdata), len(self._names_by_zone))

    def new_records_per_day(self) -> Dict[str, int]:
        """Day -> number of never-before-seen RRs (Figure 5 series)."""
        return dict(self._new_per_day)

    def ingested_days(self) -> List[str]:
        return list(self._ingest_order)

    def storage_bytes(self) -> int:
        return len(self._first_seen) * ROW_BYTES

    # -- Section VI-C mitigation ----------------------------------------

    def wildcard_aggregated_size(
            self, disposable_groups: Set[Tuple[str, int]]) -> int:
        """Row count after collapsing disposable RRs onto wildcards.

        ``disposable_groups`` is the miner's output: pairs
        ``(zone, depth)`` meaning "names at ``depth`` labels under
        ``zone`` are disposable".  Each matching record is replaced by
        its wildcard row; distinct wildcard rows are counted once.
        """
        kept: Set[RRKey] = set()
        wildcards: Set[str] = set()
        for (name, rtype, rdata) in self._first_seen:
            zone = self._matching_zone(name, disposable_groups)
            if zone is not None:
                # Anchor the wildcard at the flagged zone, so deep
                # schemes (constant labels left of the random one, as
                # in the McAfee names) still collapse to a single row.
                wildcards.add("*." + zone)
            else:
                kept.add((name, rtype, rdata))
        return len(kept) + len(wildcards)

    def split_by_disposable(
            self, disposable_groups: Set[Tuple[str, int]]
    ) -> Tuple[List[RRKey], List[RRKey]]:
        """Partition stored RRs into (disposable, non-disposable)."""
        disposable: List[RRKey] = []
        other: List[RRKey] = []
        for key in self._first_seen:
            if self._matches_disposable(key[0], disposable_groups):
                disposable.append(key)
            else:
                other.append(key)
        return disposable, other

    @staticmethod
    def _matching_zone(name: str,
                       groups: Set[Tuple[str, int]]) -> Optional[str]:
        """The flagged ancestor zone covering ``name``, or ``None``
        (shared matcher; the segmented store uses the same one)."""
        return matching_group_zone(name, groups)

    @classmethod
    def _matches_disposable(cls, name: str,
                            groups: Set[Tuple[str, int]]) -> bool:
        return cls._matching_zone(name, groups) is not None
