"""Serialization for passive-DNS artifacts.

A deployed collector writes its fpDNS stream to disk and the analysis
runs offline (the authors' datasets were 60-145 GB/day of compressed
records).  This module provides a compact, stream-friendly on-disk
format:

* **fpDNS** — gzip-compressed TSV, one line per entry:
  ``side ts client qname qtype rcode ttl rdata`` with ``-`` for absent
  fields.  Entries stream in either direction without loading the
  whole day.
* **rpDNS / pDNS-DB** — gzip TSV of ``qname qtype rdata first_seen``.

Both formats round-trip exactly and are versioned via a header line.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Iterator, Union

from repro.dns.message import RCode, RRType
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.records import FpDnsDataset, FpDnsEntry

__all__ = ["save_fpdns", "load_fpdns", "iter_fpdns_entries",
           "save_database", "load_database", "FormatError"]

_FPDNS_HEADER = "#repro-fpdns-v1"
_RPDNS_HEADER = "#repro-rpdns-v1"
_ABSENT = "-"

PathLike = Union[str, Path]


class FormatError(ValueError):
    """Raised when a file does not match the expected on-disk format."""


def _format_entry(side: str, entry: FpDnsEntry) -> str:
    client = _ABSENT if entry.client_id is None else str(entry.client_id)
    ttl = _ABSENT if entry.ttl is None else str(entry.ttl)
    rdata = _ABSENT if entry.rdata is None else entry.rdata
    # repr() is the shortest string that parses back to the same float
    # (exact round-trip) — required for the artifact cache, whose loaded
    # days must be byte-identical to the simulated originals.
    return "\t".join([side, repr(entry.timestamp), client, entry.qname,
                      entry.qtype.value, entry.rcode.name, ttl, rdata])


def _parse_entry(line: str, lineno: int) -> tuple:
    fields = line.rstrip("\n").split("\t")
    if len(fields) != 8:
        raise FormatError(f"line {lineno}: expected 8 fields, "
                          f"got {len(fields)}")
    side, ts, client, qname, qtype, rcode, ttl, rdata = fields
    if side not in ("B", "A"):
        raise FormatError(f"line {lineno}: bad side {side!r}")
    try:
        entry = FpDnsEntry(
            timestamp=float(ts),
            client_id=None if client == _ABSENT else int(client),
            qname=qname,
            qtype=RRType(qtype),
            rcode=RCode[rcode],
            ttl=None if ttl == _ABSENT else int(ttl),
            rdata=None if rdata == _ABSENT else rdata)
    except (ValueError, KeyError) as exc:
        raise FormatError(f"line {lineno}: {exc}") from exc
    return side, entry


def save_fpdns(dataset: FpDnsDataset, path: PathLike) -> int:
    """Write one fpDNS day to ``path`` (gzip TSV); returns line count."""
    count = 0
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write(f"{_FPDNS_HEADER}\t{dataset.day}\n")
        for entry in dataset.below:
            handle.write(_format_entry("B", entry) + "\n")
            count += 1
        for entry in dataset.above:
            handle.write(_format_entry("A", entry) + "\n")
            count += 1
    return count


def iter_fpdns_entries(path: PathLike) -> Iterator[tuple]:
    """Stream ``(side, FpDnsEntry)`` pairs without loading the day."""
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if not header.startswith(_FPDNS_HEADER):
            raise FormatError(f"not an fpDNS file: header {header!r}")
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            yield _parse_entry(line, lineno)


def load_fpdns(path: PathLike) -> FpDnsDataset:
    """Load a full fpDNS day written by :func:`save_fpdns`."""
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if not header.startswith(_FPDNS_HEADER):
            raise FormatError(f"not an fpDNS file: header {header!r}")
        parts = header.split("\t")
        day = parts[1] if len(parts) > 1 else "unknown"
    dataset = FpDnsDataset(day=day)
    for side, entry in iter_fpdns_entries(path):
        if side == "B":
            dataset.below.append(entry)
        else:
            dataset.above.append(entry)
    return dataset


def save_database(database: PassiveDnsDatabase, path: PathLike) -> int:
    """Write the rpDNS rows of a pDNS-DB; returns the row count."""
    count = 0
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write(_RPDNS_HEADER + "\n")
        for record in database.entries():
            handle.write("\t".join([record.qname, record.qtype.value,
                                    record.rdata, record.first_seen]) + "\n")
            count += 1
    return count


def load_database(path: PathLike) -> PassiveDnsDatabase:
    """Rebuild a pDNS-DB from :func:`save_database` output.

    First-seen days are preserved; ingestion-order metadata is
    reconstructed in sorted-day order.
    """
    rows = []
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if header != _RPDNS_HEADER:
            raise FormatError(f"not an rpDNS file: header {header!r}")
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            fields = line.rstrip("\n").split("\t")
            if len(fields) != 4:
                raise FormatError(f"line {lineno}: expected 4 fields")
            qname, qtype, rdata, first_seen = fields
            try:
                rows.append(((qname, RRType(qtype), rdata), first_seen))
            except ValueError as exc:
                raise FormatError(f"line {lineno}: {exc}") from exc
    database = PassiveDnsDatabase()
    rows.sort(key=lambda item: item[1])
    for key, day in rows:
        database.ingest_rrs(day, [key])
    return database
