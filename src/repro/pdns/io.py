"""Serialization for passive-DNS artifacts.

A deployed collector writes its fpDNS stream to disk and the analysis
runs offline (the authors' datasets were 60-145 GB/day of compressed
records).  This module provides a compact, stream-friendly on-disk
format:

* **fpDNS** — gzip-compressed TSV, one line per entry:
  ``side ts client qname qtype rcode ttl rdata`` with ``-`` for absent
  fields.  Entries stream in either direction without loading the
  whole day.
* **rpDNS / pDNS-DB** — gzip TSV of ``qname qtype rdata first_seen``.

Both formats round-trip exactly and are versioned via a header line.
Every :class:`FormatError` names the offending file (or ``<bytes>``
for in-memory payloads) so a corrupt artifact in a cache directory of
content-hash names is debuggable.  Blank lines *between* records are a
format error — an encoder that emits them is broken, and silently
skipping them would mask truncated-then-appended files; trailing blank
lines at end of file stay tolerated.

The binary columnar sibling of the fpDNS format lives in
:mod:`repro.pdns.columnar` (fpDNS-v2); this text format remains the
interchange/oracle format and the ``REPRO_ARTIFACT_FORMAT=tsv``
fallback.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import IO, Iterator, Union

from repro.dns.message import RCode, RRType
from repro.pdns.database import PassiveDnsDatabase
from repro.pdns.records import FpDnsDataset, FpDnsEntry

__all__ = ["save_fpdns", "load_fpdns", "dumps_fpdns", "loads_fpdns",
           "iter_fpdns_entries", "save_database", "load_database",
           "FormatError"]

_FPDNS_HEADER = "#repro-fpdns-v1"
_RPDNS_HEADER = "#repro-rpdns-v1"
_ABSENT = "-"

PathLike = Union[str, Path]


class FormatError(ValueError):
    """Raised when a file does not match the expected on-disk format."""


def _format_entry(side: str, entry: FpDnsEntry) -> str:
    client = _ABSENT if entry.client_id is None else str(entry.client_id)
    ttl = _ABSENT if entry.ttl is None else str(entry.ttl)
    rdata = _ABSENT if entry.rdata is None else entry.rdata
    # repr() is the shortest string that parses back to the same float
    # (exact round-trip) — required for the artifact cache, whose loaded
    # days must be byte-identical to the simulated originals.
    return "\t".join([side, repr(entry.timestamp), client, entry.qname,
                      entry.qtype.value, entry.rcode.name, ttl, rdata])


def _parse_entry(line: str, lineno: int, source: str) -> tuple:
    fields = line.rstrip("\n").split("\t")
    if len(fields) != 8:
        raise FormatError(f"{source}: line {lineno}: expected 8 fields, "
                          f"got {len(fields)}")
    side, ts, client, qname, qtype, rcode, ttl, rdata = fields
    if side not in ("B", "A"):
        raise FormatError(f"{source}: line {lineno}: bad side {side!r}")
    try:
        entry = FpDnsEntry(
            timestamp=float(ts),
            client_id=None if client == _ABSENT else int(client),
            qname=qname,
            qtype=RRType(qtype),
            rcode=RCode[rcode],
            ttl=None if ttl == _ABSENT else int(ttl),
            rdata=None if rdata == _ABSENT else rdata)
    except (ValueError, KeyError) as exc:
        raise FormatError(f"{source}: line {lineno}: {exc}") from exc
    return side, entry


def _write_fpdns(dataset: FpDnsDataset, handle: IO[str]) -> int:
    count = 0
    handle.write(f"{_FPDNS_HEADER}\t{dataset.day}\n")
    for entry in dataset.below:
        handle.write(_format_entry("B", entry) + "\n")
        count += 1
    for entry in dataset.above:
        handle.write(_format_entry("A", entry) + "\n")
        count += 1
    return count


def save_fpdns(dataset: FpDnsDataset, path: PathLike) -> int:
    """Write one fpDNS day to ``path`` (gzip TSV); returns line count."""
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        return _write_fpdns(dataset, handle)


def dumps_fpdns(dataset: FpDnsDataset) -> bytes:
    """One fpDNS day as in-memory gzip-TSV bytes (``save_fpdns`` twin)."""
    buffer = io.BytesIO()
    with gzip.open(buffer, "wt", encoding="utf-8") as handle:
        _write_fpdns(dataset, handle)
    return buffer.getvalue()


def _read_fpdns_header(handle: IO[str], source: str) -> str:
    header = handle.readline().rstrip("\n")
    if not header.startswith(_FPDNS_HEADER):
        raise FormatError(f"{source}: not an fpDNS file: "
                          f"header {header!r}")
    return header


def _iter_entries(handle: IO[str], source: str) -> Iterator[tuple]:
    """Yield ``(side, entry)`` from a handle positioned past the header."""
    pending_blank = 0
    for lineno, line in enumerate(handle, start=2):
        if not line.strip():
            # Tolerated only if nothing follows (trailing newline
            # noise); remembered so a later record makes it an error.
            if not pending_blank:
                pending_blank = lineno
            continue
        if pending_blank:
            raise FormatError(f"{source}: line {pending_blank}: blank "
                              "line between records")
        yield _parse_entry(line, lineno, source)


def iter_fpdns_entries(path: PathLike) -> Iterator[tuple]:
    """Stream ``(side, FpDnsEntry)`` pairs without loading the day."""
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        _read_fpdns_header(handle, str(path))
        yield from _iter_entries(handle, str(path))


def _read_fpdns(handle: IO[str], source: str) -> FpDnsDataset:
    header = _read_fpdns_header(handle, source)
    parts = header.split("\t")
    day = parts[1] if len(parts) > 1 else "unknown"
    dataset = FpDnsDataset(day=day)
    below_append = dataset.below.append
    above_append = dataset.above.append
    for side, entry in _iter_entries(handle, source):
        if side == "B":
            below_append(entry)
        else:
            above_append(entry)
    return dataset


def load_fpdns(path: PathLike) -> FpDnsDataset:
    """Load a full fpDNS day written by :func:`save_fpdns`."""
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        return _read_fpdns(handle, str(path))


def loads_fpdns(data: bytes, source: str = "<bytes>") -> FpDnsDataset:
    """Load an fpDNS day from in-memory gzip-TSV bytes."""
    with gzip.open(io.BytesIO(data), "rt", encoding="utf-8") as handle:
        return _read_fpdns(handle, source)


def save_database(database: PassiveDnsDatabase, path: PathLike) -> int:
    """Write the rpDNS rows of a pDNS-DB; returns the row count."""
    count = 0
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write(_RPDNS_HEADER + "\n")
        for record in database.entries():
            handle.write("\t".join([record.qname, record.qtype.value,
                                    record.rdata, record.first_seen]) + "\n")
            count += 1
    return count


def load_database(path: PathLike) -> PassiveDnsDatabase:
    """Rebuild a pDNS-DB from :func:`save_database` output.

    First-seen days are preserved; ingestion-order metadata is
    reconstructed in sorted-day order.
    """
    source = str(path)
    rows = []
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if header != _RPDNS_HEADER:
            raise FormatError(f"{source}: not an rpDNS file: "
                              f"header {header!r}")
        for lineno, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            fields = line.rstrip("\n").split("\t")
            if len(fields) != 4:
                raise FormatError(f"{source}: line {lineno}: expected "
                                  "4 fields")
            qname, qtype, rdata, first_seen = fields
            try:
                rows.append(((qname, RRType(qtype), rdata), first_seen))
            except ValueError as exc:
                raise FormatError(f"{source}: line {lineno}: "
                                  f"{exc}") from exc
    database = PassiveDnsDatabase()
    rows.sort(key=lambda item: item[1])
    for key, day in rows:
        database.ingest_rrs(day, [key])
    return database
