"""Passive-DNS dataset containers — compatibility re-export.

The container types moved to :mod:`repro.core.records` so the mining
core sits at the bottom of the layering DAG (it consumes these datasets
and must not import upward). The pdns collection machinery and all
existing callers keep importing them from here.
"""

from __future__ import annotations

from repro.core.records import FpDnsDataset, FpDnsEntry, RpDnsEntry, RRKey

__all__ = ["FpDnsEntry", "FpDnsDataset", "RpDnsEntry", "RRKey"]
