"""fpDNS dataset storage sizing.

Section III-A: "the size of the compressed fpDNS dataset is around
60 GB per day in February, and around 145 GB per day in December,
2011" — a 2.4x growth at the same tap, driven by rising volume and by
disposable names being much longer than ordinary hostnames (more
bytes per record).  This module prices a simulated day the same way:
wire-format record sizes plus the collector's per-record metadata,
with a configurable compression factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from repro.core.names import labels
from repro.core.groups import name_matches_groups
from repro.dns.message import ResourceRecord, RRType
from repro.dns.wire import encoded_name_size
from repro.pdns.database import PdnsBackend
from repro.pdns.records import FpDnsDataset, FpDnsEntry

__all__ = ["ENTRY_METADATA_BYTES", "DatabaseSizeReport",
           "DatasetSizeReport", "database_storage_report",
           "entry_storage_bytes", "estimate_dataset_size"]

# Per-record collection metadata: timestamp (8) + anonymised client id
# (8) + qtype/rcode/ttl fields (8).
ENTRY_METADATA_BYTES = 24
_NXDOMAIN_RDATA_BYTES = 0
_FIXED_RR_PART = 10


def entry_storage_bytes(entry: FpDnsEntry) -> int:
    """Stored size of one fpDNS record before compression."""
    size = ENTRY_METADATA_BYTES + encoded_name_size(entry.qname)
    if entry.is_answer:
        size += _FIXED_RR_PART
        if entry.qtype is RRType.A:
            size += 4
        elif entry.qtype is RRType.AAAA:
            size += 16
        elif entry.qtype is RRType.CNAME:
            size += encoded_name_size(entry.rdata)
        else:
            size += len(entry.rdata or "")
    return size


@dataclass
class DatasetSizeReport:
    """Byte accounting for one fpDNS day."""

    day: str
    raw_bytes: int
    compressed_bytes: int
    entries: int
    disposable_bytes: Optional[int] = None

    @property
    def mean_entry_bytes(self) -> float:
        return self.raw_bytes / self.entries if self.entries else 0.0

    @property
    def disposable_byte_share(self) -> Optional[float]:
        if self.disposable_bytes is None or not self.raw_bytes:
            return None
        return self.disposable_bytes / self.raw_bytes


def estimate_dataset_size(dataset: FpDnsDataset,
                          compression_ratio: float = 0.35,
                          disposable_groups: Optional[Set[Tuple[str, int]]]
                          = None) -> DatasetSizeReport:
    """Price one fpDNS day in bytes.

    ``compression_ratio`` is the compressed/raw factor (DNS logs
    compress well; ~0.35 is typical for gzip on name-heavy TSV).  When
    ``disposable_groups`` is given, the bytes attributable to
    disposable records are reported separately — the driver of the
    paper's 60→145 GB/day growth.
    """
    if not 0.0 < compression_ratio <= 1.0:
        raise ValueError(
            f"compression_ratio must be in (0, 1], got {compression_ratio}")
    raw = 0
    disposable = 0
    entries = 0
    for stream in (dataset.below, dataset.above):
        for entry in stream:
            size = entry_storage_bytes(entry)
            raw += size
            entries += 1
            if disposable_groups is not None and name_matches_groups(
                    entry.qname, disposable_groups):
                disposable += size
    return DatasetSizeReport(
        day=dataset.day, raw_bytes=raw,
        compressed_bytes=int(raw * compression_ratio),
        entries=entries,
        disposable_bytes=disposable if disposable_groups is not None
        else None)


# -- pDNS-DB storage (rpDNS rows, not the raw fpDNS stream) ------------


@dataclass
class DatabaseSizeReport:
    """Storage accounting for one passive-DNS database backend.

    ``source`` labels where the bytes come from: ``"measured"`` for a
    segmented on-disk store (real segment file sizes) or
    ``"row-model"`` for the in-memory database, whose bytes are the
    paper's fixed per-row estimate and must not be read as a
    measurement.
    """

    rows: int
    stored_bytes: int
    days: int
    source: str

    @property
    def bytes_per_row(self) -> float:
        return self.stored_bytes / self.rows if self.rows else 0.0

    def render(self) -> str:
        return (f"pDNS-DB: {self.rows} rows over {self.days} days, "
                f"{self.stored_bytes} bytes "
                f"({self.bytes_per_row:.1f} B/row, {self.source})")


def database_storage_report(database: PdnsBackend) -> DatabaseSizeReport:
    """Size one pDNS backend, preferring measured on-disk bytes.

    A :class:`~repro.pdns.store.SegmentedPdnsStore` reports its actual
    segment bytes; the in-memory database falls back to the paper's
    48-B/row model, labeled as such.
    """
    measured = bool(getattr(database, "storage_is_measured", False))
    return DatabaseSizeReport(
        rows=len(database),
        stored_bytes=database.storage_bytes(),
        days=len(database.ingested_days()),
        source="measured" if measured else "row-model")
