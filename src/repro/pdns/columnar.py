"""fpDNS-v2: binary columnar persistence for fpDNS days.

The authors processed 60-145 GB/day of *compressed text* records
offline (PAPER Section IV); our gzip-TSV format (:mod:`repro.pdns.io`)
mirrors that, and it is exactly why warm sessions were slow: loading a
cached day re-parsed every line, re-built millions of
:class:`~repro.core.records.FpDnsEntry` tuples and re-interned every
qname — only for :func:`~repro.core.interning.build_day_digest` to
tear them straight back down into the numpy columns the mining
pipeline actually consumes.  Following the columnar-storage lesson of
the Dremel/Hail-style analytics systems in PAPERS.md, fpDNS-v2 stores
the **columns themselves**: a warm load is disk -> numpy -> digest,
with zero entry materialisation and no re-interning.

On-disk layout
--------------
::

    #repro-fpdns2\\n                       magic line
    {"version":1,"day":...,               one-line JSON header:
     "content_key":...,                    format version, day label,
     "payload_sha256":...,                 dataset content key, payload
     "payload_bytes":N}\\n                 checksum and exact length
    <npz payload>                         numpy ``savez`` archive

The payload holds the :meth:`~repro.core.interning.DayDigest.to_columns`
arrays — the interned name pool (``names_blob``/``names_offsets``),
the RR identity table over a deduplicated rdata pool, and one array
per stream field — plus the *extra-rdata* columns
(``below_xrdata_ids``/``above_xrdata_ids`` over ``xrdata_blob``):
rdata strings carried by non-answer rows, which the digest proper
drops but exact entry round-trip requires.  The header's
``payload_bytes``/``payload_sha256`` make truncation and corruption
detectable before numpy ever parses a byte; any mismatch raises
:class:`~repro.pdns.io.FormatError`, which the artifact cache treats
as a miss.

``content_key`` is :func:`repro.core.keys.dataset_content_key`
computed from the real entries at store time, so keying a warm day
(e.g. for the miner result cache) costs nothing.

Compatibility
-------------
:class:`ColumnarFpDnsDataset` is a drop-in
:class:`~repro.core.records.FpDnsDataset`: ``below``/``above`` are
lazy views that materialise the legacy entry lists on first access, so
every per-entry consumer keeps working; digest-native consumers call
:func:`repro.core.interning.digest_of` and never trigger it.  Absent
``client_id``/``ttl`` are encoded as ``-1`` (the digest convention),
so datasets carrying *negative* client ids or TTLs — which neither the
simulator nor the TSV loader produce — are not representable.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.dnstypes import RCode
from repro.core.interning import (RRTYPE_BY_CODE, DayDigest,
                                  build_day_digest, decode_string_pool,
                                  encode_string_pool)
from repro.core.keys import (compute_dataset_content_key,
                             dataset_content_key)
from repro.core.records import FpDnsDataset, FpDnsEntry
from repro.pdns.io import FormatError

__all__ = ["FPDNS2_MAGIC", "FPDNS2_VERSION", "ColumnarFpDnsDataset",
           "dumps_fpdns2", "loads_fpdns2", "save_fpdns2", "load_fpdns2"]

FPDNS2_MAGIC = b"#repro-fpdns2\n"
FPDNS2_VERSION = 1

PathLike = Union[str, Path]

_RCODE_BY_VALUE: Dict[int, RCode] = {member.value: member
                                     for member in RCode}

#: ``(below_xrdata_ids, above_xrdata_ids, xrdata_strings)`` — rdata of
#: non-answer rows, pooled; ids are ``-1`` where the row has none.
_XRdata = Tuple[np.ndarray, np.ndarray, List[str]]


class ColumnarFpDnsDataset(FpDnsDataset):
    """An fpDNS day backed by columns instead of entry lists.

    Carries the deserialised :class:`~repro.core.interning.DayDigest`
    (via :meth:`day_digest`); ``below``/``above`` materialise the
    legacy :class:`~repro.core.records.FpDnsEntry` lists only when a
    per-entry consumer actually reads them.

    ``content_key`` is precomputed on warm artifact loads (carried by
    the fpDNS-v2 header) and *lazy* on freshly merged parallel days
    (pass ``None``): the key hashes the real entries, so computing it
    eagerly would force the entry materialisation this class exists to
    avoid.  Reading the property on a keyless day computes and caches
    it once — the merged entries are identical to the serial day's, so
    the lazy key equals the key a serial run would have stored.
    """

    def __init__(self, day: str, digest: DayDigest, xrdata: _XRdata,
                 content_key: Optional[str]) -> None:
        # Deliberately not calling the dataclass __init__: ``below`` /
        # ``above`` are lazy properties here, not list fields.
        self.day = day
        self._digest = digest
        self._xrdata = xrdata
        self._content_key = content_key
        self._below_entries: Optional[List[FpDnsEntry]] = None
        self._above_entries: Optional[List[FpDnsEntry]] = None

    @property
    def content_key(self) -> str:
        """The day's :func:`~repro.core.keys.dataset_content_key`.

        Free on warm loads; computed (and cached) from the entries on
        first read for parallel-merged days.
        """
        if self._content_key is None:
            self._content_key = compute_dataset_content_key(self)
        return self._content_key

    def day_digest(self) -> DayDigest:
        """The columnar digest — free, already deserialised."""
        return self._digest

    @property
    def below(self) -> List[FpDnsEntry]:  # type: ignore[override]
        if self._below_entries is None:
            self._below_entries = _materialize_stream(
                self._digest, "below", self._xrdata[0], self._xrdata[2])
        return self._below_entries

    @property
    def above(self) -> List[FpDnsEntry]:  # type: ignore[override]
        if self._above_entries is None:
            self._above_entries = _materialize_stream(
                self._digest, "above", self._xrdata[1], self._xrdata[2])
        return self._above_entries

    def __eq__(self, other: object) -> bool:
        # The dataclass __eq__ requires identical classes; a columnar
        # day must also compare equal to its plain twin (the equality
        # tests' oracle), so compare by content against any dataset.
        if isinstance(other, FpDnsDataset):
            return (self.day == other.day and self.below == other.below
                    and self.above == other.above)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        # Keep repr lazy too: volumes come from the digest columns.
        return (f"ColumnarFpDnsDataset(day={self.day!r}, "
                f"below={self._digest.below_volume()}, "
                f"above={self._digest.above_volume()})")


def _materialize_stream(digest: DayDigest, which: str,
                        xrdata_ids: np.ndarray,
                        xrdata_strings: List[str]) -> List[FpDnsEntry]:
    """Rebuild one stream's entry list from the columns (exact)."""
    stream = digest.below if which == "below" else digest.above
    names = digest.names.names
    rr_keys = digest.rr_keys
    rrtype_by_code = RRTYPE_BY_CODE
    rcode_by_value = _RCODE_BY_VALUE
    entries: List[FpDnsEntry] = []
    append = entries.append
    for ts, nid, rid, cid, rc, qt, ttl, xid in zip(
            stream.timestamps.tolist(), stream.name_ids.tolist(),
            stream.rr_ids.tolist(), stream.client_ids.tolist(),
            stream.rcodes.tolist(), stream.qtypes.tolist(),
            stream.ttls.tolist(), xrdata_ids.tolist()):
        if rid >= 0:
            rdata = rr_keys[rid][2]
        elif xid >= 0:
            rdata = xrdata_strings[xid]
        else:
            rdata = None
        append(FpDnsEntry(
            timestamp=ts,
            client_id=None if cid < 0 else cid,
            qname=names[nid],
            qtype=rrtype_by_code[qt],
            rcode=rcode_by_value[rc],
            ttl=None if ttl < 0 else ttl,
            rdata=rdata))
    return entries


def _extract_xrdata(dataset: FpDnsDataset, digest: DayDigest) -> _XRdata:
    """Pool the rdata of non-answer rows (rare; usually empty).

    Only rows whose RR id is ``-1`` can carry rdata the digest lost,
    so only those entries are touched.
    """
    strings: List[str] = []
    pool: Dict[str, int] = {}
    columns: List[np.ndarray] = []
    for entries, stream in ((dataset.below, digest.below),
                            (dataset.above, digest.above)):
        ids = np.full(len(stream), -1, dtype=np.int32)
        for row in np.nonzero(stream.rr_ids < 0)[0].tolist():
            rdata = entries[row].rdata
            if rdata is None:
                continue
            xid = pool.get(rdata)
            if xid is None:
                xid = len(strings)
                pool[rdata] = xid
                strings.append(rdata)
            ids[row] = xid
        columns.append(ids)
    return columns[0], columns[1], strings


def dumps_fpdns2(dataset: FpDnsDataset,
                 digest: Optional[DayDigest] = None) -> bytes:
    """Serialise one fpDNS day to the fpDNS-v2 binary columnar format.

    ``digest`` may be supplied when the caller already built the day's
    digest (the experiment context does); otherwise one is built here.
    Re-encoding a :class:`ColumnarFpDnsDataset` reuses its columns
    without materialising entries.
    """
    if isinstance(dataset, ColumnarFpDnsDataset):
        digest = dataset.day_digest()
        xrdata = dataset._xrdata
        content_key = dataset.content_key
    else:
        if digest is None:
            digest = build_day_digest(dataset)
        xrdata = _extract_xrdata(dataset, digest)
        content_key = dataset_content_key(dataset)
    columns = digest.to_columns()
    columns["below_xrdata_ids"] = xrdata[0]
    columns["above_xrdata_ids"] = xrdata[1]
    xrdata_blob, xrdata_offsets = encode_string_pool(xrdata[2])
    columns["xrdata_blob"] = xrdata_blob
    columns["xrdata_offsets"] = xrdata_offsets
    buffer = io.BytesIO()
    np.savez(buffer, **columns)
    payload = buffer.getvalue()
    header = {
        "version": FPDNS2_VERSION,
        "day": digest.day,
        "content_key": content_key,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
    }
    header_line = json.dumps(header, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
    return FPDNS2_MAGIC + header_line + b"\n" + payload


def loads_fpdns2(data: bytes,
                 source: str = "<bytes>") -> ColumnarFpDnsDataset:
    """Deserialise :func:`dumps_fpdns2` output (the warm path).

    Raises :class:`~repro.pdns.io.FormatError` — naming ``source`` —
    on bad magic, unsupported version, truncation or checksum
    mismatch; the artifact cache maps all of those to a miss.
    """
    if not data.startswith(FPDNS2_MAGIC):
        raise FormatError(f"{source}: not an fpDNS-v2 artifact "
                          "(bad magic)")
    header_end = data.find(b"\n", len(FPDNS2_MAGIC))
    if header_end < 0:
        raise FormatError(f"{source}: truncated fpDNS-v2 header")
    try:
        header = json.loads(data[len(FPDNS2_MAGIC):header_end]
                            .decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise FormatError(f"{source}: bad fpDNS-v2 header: {exc}") from exc
    version = header.get("version")
    if version != FPDNS2_VERSION:
        raise FormatError(f"{source}: unsupported fpDNS-v2 version "
                          f"{version!r} (expected {FPDNS2_VERSION})")
    payload = data[header_end + 1:]
    expected_bytes = header.get("payload_bytes")
    if len(payload) != expected_bytes:
        raise FormatError(f"{source}: truncated fpDNS-v2 payload "
                          f"({len(payload)} of {expected_bytes} bytes)")
    checksum = hashlib.sha256(payload).hexdigest()
    if checksum != header.get("payload_sha256"):
        raise FormatError(f"{source}: fpDNS-v2 payload checksum mismatch")
    day = header.get("day")
    content_key = header.get("content_key")
    if not isinstance(day, str) or not isinstance(content_key, str):
        raise FormatError(f"{source}: fpDNS-v2 header missing "
                          "day/content_key")
    try:
        with np.load(io.BytesIO(payload)) as archive:
            columns = {name: archive[name] for name in archive.files}
        digest = DayDigest.from_columns(day, columns)
        xrdata = (columns["below_xrdata_ids"], columns["above_xrdata_ids"],
                  decode_string_pool(columns["xrdata_blob"],
                                     columns["xrdata_offsets"]))
    except (KeyError, ValueError, OSError) as exc:
        raise FormatError(f"{source}: bad fpDNS-v2 payload: {exc}") from exc
    return ColumnarFpDnsDataset(day=day, digest=digest, xrdata=xrdata,
                                content_key=content_key)


def save_fpdns2(dataset: FpDnsDataset, path: PathLike,
                digest: Optional[DayDigest] = None) -> int:
    """Write one fpDNS-v2 day to ``path``; returns the byte count."""
    data = dumps_fpdns2(dataset, digest)
    Path(path).write_bytes(data)
    return len(data)


def load_fpdns2(path: PathLike) -> ColumnarFpDnsDataset:
    """Load an fpDNS-v2 day written by :func:`save_fpdns2`."""
    return loads_fpdns2(Path(path).read_bytes(), source=str(path))
