"""Passive DNS collection: fpDNS/rpDNS datasets, the monitoring tap,
and the deduplicating passive-DNS database."""

from repro.pdns.collector import PassiveDnsCollector
from repro.pdns.columnar import (ColumnarFpDnsDataset, load_fpdns2,
                                 save_fpdns2)
from repro.pdns.database import (IngestReport, PassiveDnsDatabase,
                                 PdnsBackend, wildcard_name)
from repro.pdns.io import (FormatError, iter_fpdns_entries, load_database,
                           load_fpdns, save_database, save_fpdns)
from repro.pdns.query import IndexStats, PdnsQueryIndex
from repro.pdns.segments import (Segment, SegmentMeta, build_segment_bytes,
                                 open_segment)
from repro.pdns.sizing import (DatabaseSizeReport, DatasetSizeReport,
                               database_storage_report,
                               entry_storage_bytes, estimate_dataset_size)
from repro.pdns.store import (CompactionReport, SegmentedPdnsStore,
                              StoreStats)
from repro.pdns.records import FpDnsDataset, FpDnsEntry, RpDnsEntry, RRKey

__all__ = [
    "PassiveDnsCollector",
    "IngestReport", "PassiveDnsDatabase", "PdnsBackend", "wildcard_name",
    "FpDnsDataset", "FpDnsEntry", "RpDnsEntry", "RRKey",
    "FormatError", "iter_fpdns_entries", "load_database", "load_fpdns",
    "save_database", "save_fpdns",
    "ColumnarFpDnsDataset", "load_fpdns2", "save_fpdns2",
    "IndexStats", "PdnsQueryIndex",
    "Segment", "SegmentMeta", "build_segment_bytes", "open_segment",
    "CompactionReport", "SegmentedPdnsStore", "StoreStats",
    "DatabaseSizeReport", "DatasetSizeReport", "database_storage_report",
    "entry_storage_bytes", "estimate_dataset_size",
]
