"""Passive-DNS collector: the monitoring tap of Section III-A.

Implements the :class:`repro.dns.resolver.MonitoringTap` protocol.
Attached to an :class:`repro.dns.resolver.RdnsCluster`, it records the
answer sections of every response below the resolvers and every
response above them into a daily :class:`FpDnsDataset` — the same
artifact the authors collected at the ISP.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.dns.message import RCode, Response
from repro.pdns.records import FpDnsDataset, FpDnsEntry

__all__ = ["PassiveDnsCollector", "entries_for_response"]

_NOERROR = RCode.NOERROR
_NXDOMAIN = RCode.NXDOMAIN


def entries_for_response(timestamp: float, client_id: Optional[int],
                         response: Response) -> List[FpDnsEntry]:
    """The fpDNS rows one observed response contributes.

    Shared by the in-process collector and the shard workers of
    :mod:`repro.traffic.parallel`, so both monitoring paths materialise
    byte-identical streams.
    """
    if response.rcode is _NXDOMAIN or not response.answers:
        rcode = (response.rcode if response.rcode is not _NOERROR
                 else _NXDOMAIN)
        question = response.question
        return [FpDnsEntry(timestamp, client_id, question.qname,
                           question.qtype, rcode, None, None)]
    # Each answer RR is recorded under its own owner name: a
    # CNAME chain contributes one row per chain member, exactly as
    # passive-DNS taps store answer sections.
    return [
        FpDnsEntry(timestamp, client_id, rr.name, rr.rtype,
                   _NOERROR, rr.ttl, rr.rdata)
        for rr in response.answers
    ]


class PassiveDnsCollector:
    """Records both monitored streams into per-day fpDNS datasets.

    Parameters
    ----------
    day:
        Label of the first dataset to collect into.
    retain_days:
        How many *completed* (rolled) datasets to keep referenced.
        ``0`` (default) retains none — each completed day is returned
        to the caller and then owned solely by it, so a year-long
        simulation no longer pins every day (plus the synthetic warmup
        placeholders) in memory for the process lifetime.  A positive
        value keeps the most recent N; ``None`` keeps all (the
        pre-sharding behaviour).
    """

    def __init__(self, day: str = "warmup",
                 retain_days: Optional[int] = 0) -> None:
        if retain_days is not None and retain_days < 0:
            raise ValueError(
                f"retain_days must be >= 0, got {retain_days}")
        self._dataset = FpDnsDataset(day=day)
        self._finished: Optional[Deque[FpDnsDataset]]
        if retain_days == 0:
            self._finished = None
        else:
            self._finished = deque(maxlen=retain_days)

    @property
    def dataset(self) -> FpDnsDataset:
        """The dataset currently being collected."""
        return self._dataset

    @property
    def finished_datasets(self) -> List[FpDnsDataset]:
        """Completed datasets retained under the ``retain_days`` policy."""
        return list(self._finished) if self._finished is not None else []

    def begin_day(self, day: str) -> None:
        """Start collecting ``day``, discarding the current dataset.

        Used by the simulator at the top of each day: whatever was
        being collected (the initial warmup placeholder, or an idle
        gap between :meth:`end_day` and the next day) carries no
        observations and is dropped rather than retained.
        """
        self._dataset = FpDnsDataset(day=day)

    def end_day(self) -> FpDnsDataset:
        """Close the current day and return it.

        The completed dataset is retained per ``retain_days``; a fresh
        idle placeholder (never retained) collects anything observed
        before the next :meth:`begin_day`.
        """
        completed = self._dataset
        if self._finished is not None:
            self._finished.append(completed)
        self._dataset = FpDnsDataset(day=f"idle-after-{completed.day}")
        return completed

    def roll_day(self, new_day: str) -> FpDnsDataset:
        """Close the current day and start collecting ``new_day``.

        Returns the completed dataset (retained per ``retain_days``).
        """
        completed = self.end_day()
        self._dataset = FpDnsDataset(day=new_day)
        return completed

    # -- MonitoringTap protocol ----------------------------------------

    def observe_below(self, timestamp: float, client_id: Optional[int],
                      response: Response) -> None:
        self._dataset.below.extend(
            entries_for_response(timestamp, client_id, response))

    def observe_above(self, timestamp: float, response: Response) -> None:
        self._dataset.above.extend(
            entries_for_response(timestamp, None, response))
