"""Passive-DNS collector: the monitoring tap of Section III-A.

Implements the :class:`repro.dns.resolver.MonitoringTap` protocol.
Attached to an :class:`repro.dns.resolver.RdnsCluster`, it records the
answer sections of every response below the resolvers and every
response above them into a daily :class:`FpDnsDataset` — the same
artifact the authors collected at the ISP.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dns.message import RCode, Response
from repro.pdns.records import FpDnsDataset, FpDnsEntry

__all__ = ["PassiveDnsCollector"]


class PassiveDnsCollector:
    """Records both monitored streams into per-day fpDNS datasets."""

    def __init__(self, day: str) -> None:
        self._dataset = FpDnsDataset(day=day)
        self._finished: List[FpDnsDataset] = []

    @property
    def dataset(self) -> FpDnsDataset:
        """The dataset currently being collected."""
        return self._dataset

    @property
    def finished_datasets(self) -> List[FpDnsDataset]:
        return list(self._finished)

    def roll_day(self, new_day: str) -> FpDnsDataset:
        """Close the current day and start collecting ``new_day``.

        Returns the completed dataset.
        """
        completed = self._dataset
        self._finished.append(completed)
        self._dataset = FpDnsDataset(day=new_day)
        return completed

    # -- MonitoringTap protocol ----------------------------------------

    def observe_below(self, timestamp: float, client_id: Optional[int],
                      response: Response) -> None:
        self._dataset.below.extend(
            self._entries_for(timestamp, client_id, response))

    def observe_above(self, timestamp: float, response: Response) -> None:
        self._dataset.above.extend(
            self._entries_for(timestamp, None, response))

    @staticmethod
    def _entries_for(timestamp: float, client_id: Optional[int],
                     response: Response) -> List[FpDnsEntry]:
        question = response.question
        if response.rcode is RCode.NXDOMAIN or not response.answers:
            rcode = (response.rcode if response.rcode is not RCode.NOERROR
                     else RCode.NXDOMAIN)
            return [FpDnsEntry(timestamp=timestamp, client_id=client_id,
                               qname=question.qname, qtype=question.qtype,
                               rcode=rcode)]
        # Each answer RR is recorded under its own owner name: a
        # CNAME chain contributes one row per chain member, exactly as
        # passive-DNS taps store answer sections.
        return [
            FpDnsEntry(timestamp=timestamp, client_id=client_id,
                       qname=rr.name, qtype=rr.rtype,
                       rcode=RCode.NOERROR, ttl=rr.ttl, rdata=rr.rdata)
            for rr in response.answers
        ]
