"""Immutable on-disk columnar segments for the passive-DNS store.

One segment holds a batch of deduplicated rpDNS rows — ``(name, type,
rdata)`` identity triples with their exact first-seen day — as packed
numpy columns plus small **prefilters** that let the query layer skip
the segment without opening its payload.  Segments are the unit of the
LSM-flavoured :class:`repro.pdns.store.SegmentedPdnsStore`: every
ingested day becomes one segment, compaction k-way-merges segments
into bigger ones, and queries union only the segments whose prefilters
match.

On-disk layout
--------------
::

    #repro-pdnsseg1\\n                 magic line
    {"days":[...],"filters_bytes":N,  one-line JSON header: the exact
     "filters_sha256":...,             day list the segment accounts,
     "n_names":...,"n_rows":...,       row/name counts, and length +
     "payload_bytes":N,                checksum of each block
     "payload_sha256":...,"version":1}\\n
    <filters block>                   pack_columns: sorted uint64
                                      hash arrays (names, rdata,
                                      zones, RR triples)
    <payload block>                   pack_columns: string pools +
                                      row columns

Both blocks use the :func:`repro.core.ipc.pack_columns` framing, so a
reader maps the file and reads every array as a **zero-copy view** —
no per-row Python objects exist until a query materialises its (few)
matching rows.  The filters block is tiny and loaded eagerly at open;
the payload block is mapped lazily on first data access and its
checksum verified exactly once per open.

Determinism
-----------
:func:`build_segment_bytes` is a pure function of its logical content:
rows are ordered by :func:`repro.core.records.rr_sort_key`, string
pools are derived from that order, the day pool is sorted, and the
JSON header is canonical.  Merging the same row set grouped or ordered
any way therefore produces **byte-identical** segments — the
compaction determinism contract
(``tests/pdns/test_store.py`` pins it).

Corruption
----------
Every structural defect raises :class:`repro.pdns.io.FormatError`
naming the offending path: bad magic, bad or truncated header, wrong
version, short file (length check against the header at open), filter
or payload checksum mismatch, and undecodable blocks.  The store layer
decides whether that is fatal (default) or skip-with-report.
"""

from __future__ import annotations

import hashlib
import json
import mmap
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.artifact_store import CorruptArtifact
from repro.core.interning import (RRTYPE_BY_CODE, RRTYPE_CODES,
                                  decode_string_pool, encode_string_pool)
from repro.core.ipc import pack_columns, unpack_columns
from repro.core.names import parent
from repro.core.records import RpDnsEntry, RRKey, rr_sort_key
from repro.pdns.io import FormatError

__all__ = ["SEGMENT_MAGIC", "SEGMENT_SUFFIX", "SEGMENT_VERSION",
           "Segment", "SegmentMeta", "build_segment_bytes", "hash64",
           "hash_rr_key", "open_segment", "zone_ancestors"]

SEGMENT_MAGIC = b"#repro-pdnsseg1\n"
SEGMENT_VERSION = 1

#: File suffix of published segments (the store's ArtifactStore suffix).
SEGMENT_SUFFIX = ".pdnsseg"

_HASH_SEPARATOR = b"\x00"


def hash64(text: str) -> int:
    """Deterministic 64-bit hash of ``text`` (blake2b, process-stable).

    Python's builtin ``hash`` is salted per process, so prefilters
    must use a keyless cryptographic hash: equal strings hash equal in
    every session that ever reads the segment.
    """
    return int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(),
        "little")


def hash_rr_key(key: RRKey) -> int:
    """64-bit hash of one RR identity triple (name, type, rdata)."""
    name, qtype, rdata = key
    blob = (name.encode("utf-8") + _HASH_SEPARATOR
            + qtype.value.encode("utf-8") + _HASH_SEPARATOR
            + rdata.encode("utf-8"))
    return int.from_bytes(
        hashlib.blake2b(blob, digest_size=8).digest(), "little")


def zone_ancestors(name: str) -> List[str]:
    """Every proper ancestor zone of ``name`` (``a.b.c`` -> b.c, c)."""
    zones: List[str] = []
    ancestor = parent(name)
    while ancestor is not None:
        zones.append(ancestor)
        ancestor = parent(ancestor)
    return zones


def _sorted_hash_array(hashes: Sequence[int]) -> np.ndarray:
    array = np.array(sorted(set(hashes)), dtype=np.uint64)
    return array


def _pool_string(blob: np.ndarray, offsets: np.ndarray, index: int) -> str:
    """Decode one pooled string without touching the rest of the blob."""
    start = int(offsets[index])
    end = int(offsets[index + 1])
    return blob[start:end].tobytes().decode("utf-8")


# -- writing -----------------------------------------------------------


def build_segment_bytes(rows: Mapping[RRKey, str],
                        days: Optional[Sequence[str]] = None) -> bytes:
    """Serialise ``rows`` (RR key -> first-seen day) to one segment.

    ``days`` may list *every* day the segment accounts for, including
    days that contributed zero new rows (the store preserves the
    in-memory database's per-day ledger exactly); it defaults to the
    distinct row days.  Output bytes are a pure function of
    ``(rows, days)`` — any iteration order, any merge grouping.
    """
    day_pool: List[str] = sorted(set(days) if days is not None
                                 else set(rows.values()))
    day_ids: Dict[str, int] = {day: index
                               for index, day in enumerate(day_pool)}
    for key, day in rows.items():
        if day not in day_ids:
            raise ValueError(
                f"row day {day!r} missing from the segment day list")

    ordered = sorted(rows.items(), key=lambda item: rr_sort_key(item[0]))
    name_ids: Dict[str, int] = {}
    names: List[str] = []
    rdata_ids: Dict[str, int] = {}
    rdatas: List[str] = []
    row_name_ids = np.empty(len(ordered), dtype=np.int32)
    row_qtypes = np.empty(len(ordered), dtype=np.int16)
    row_rdata_ids = np.empty(len(ordered), dtype=np.int32)
    row_day_ids = np.empty(len(ordered), dtype=np.int32)
    rr_hashes: List[int] = []
    for row, ((name, qtype, rdata), day) in enumerate(ordered):
        nid = name_ids.get(name)
        if nid is None:
            nid = len(names)
            name_ids[name] = nid
            names.append(name)
        rid = rdata_ids.get(rdata)
        if rid is None:
            rid = len(rdatas)
            rdata_ids[rdata] = rid
            rdatas.append(rdata)
        row_name_ids[row] = nid
        row_qtypes[row] = RRTYPE_CODES[qtype]
        row_rdata_ids[row] = rid
        row_day_ids[row] = day_ids[day]
        rr_hashes.append(hash_rr_key((name, qtype, rdata)))

    name_hash_by_id = np.array([hash64(name) for name in names],
                               dtype=np.uint64)
    rdata_hash_by_id = np.array([hash64(rdata) for rdata in rdatas],
                                dtype=np.uint64)
    zone_hashes: List[int] = []
    for name in names:
        zone_hashes.extend(hash64(zone) for zone in zone_ancestors(name))

    names_blob, names_offsets = encode_string_pool(names)
    rdata_blob, rdata_offsets = encode_string_pool(rdatas)
    days_blob, days_offsets = encode_string_pool(day_pool)
    payload = pack_columns({
        "names_blob": names_blob,
        "names_offsets": names_offsets,
        "name_hash_by_id": name_hash_by_id,
        "rdata_blob": rdata_blob,
        "rdata_offsets": rdata_offsets,
        "rdata_hash_by_id": rdata_hash_by_id,
        "days_blob": days_blob,
        "days_offsets": days_offsets,
        "row_name_ids": row_name_ids,
        "row_qtypes": row_qtypes,
        "row_rdata_ids": row_rdata_ids,
        "row_day_ids": row_day_ids,
    })
    filters = pack_columns({
        "name_hashes": _sorted_hash_array(name_hash_by_id.tolist()),
        "rdata_hashes": _sorted_hash_array(rdata_hash_by_id.tolist()),
        "zone_hashes": _sorted_hash_array(zone_hashes),
        "rr_hashes": _sorted_hash_array(rr_hashes),
    })
    header = {
        "days": day_pool,
        "filters_bytes": len(filters),
        "filters_sha256": hashlib.sha256(filters).hexdigest(),
        "n_names": len(names),
        "n_rows": len(ordered),
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "version": SEGMENT_VERSION,
    }
    header_line = json.dumps(header, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
    return SEGMENT_MAGIC + header_line + b"\n" + filters + payload


# -- reading -----------------------------------------------------------


class SegmentMeta:
    """Header-level facts about one segment (no payload required)."""

    __slots__ = ("days", "n_names", "n_rows", "payload_sha256",
                 "filters_bytes", "payload_bytes")

    def __init__(self, days: List[str], n_names: int, n_rows: int,
                 payload_sha256: str, filters_bytes: int,
                 payload_bytes: int) -> None:
        self.days = days
        self.n_names = n_names
        self.n_rows = n_rows
        self.payload_sha256 = payload_sha256
        self.filters_bytes = filters_bytes
        self.payload_bytes = payload_bytes

    @property
    def days_first(self) -> str:
        return self.days[0]

    @property
    def days_last(self) -> str:
        return self.days[-1]


class Segment:
    """One opened segment: eager prefilters, lazy zero-copy payload.

    Opening reads and validates the header and the (small) filter
    block only; the payload is mapped on first data access, its
    checksum verified exactly once, and every column read back as a
    zero-copy view over the mapping.  :meth:`release` drops the cached
    views so a store can bound how many segments stay resident.
    """

    def __init__(self, path: str, meta: SegmentMeta,
                 filters: Dict[str, np.ndarray],
                 payload_start: int) -> None:
        self.path = path
        self.meta = meta
        self._filters = filters
        self._payload_start = payload_start
        self._mmap: Optional[mmap.mmap] = None
        self._columns: Optional[Dict[str, np.ndarray]] = None
        self._name_list: Optional[List[str]] = None

    # -- prefilters (no payload access) --------------------------------

    def may_contain_name_hash(self, value: int) -> bool:
        return _sorted_member(self._filters["name_hashes"], value)

    def may_contain_rdata_hash(self, value: int) -> bool:
        return _sorted_member(self._filters["rdata_hashes"], value)

    def may_contain_zone_hash(self, value: int) -> bool:
        return _sorted_member(self._filters["zone_hashes"], value)

    def may_contain_rr_hash(self, value: int) -> bool:
        return _sorted_member(self._filters["rr_hashes"], value)

    def matching_rr_hashes(self, hashes: np.ndarray) -> np.ndarray:
        """Boolean mask over ``hashes``: possibly stored here?"""
        filter_hashes = self._filters["rr_hashes"]
        positions = np.searchsorted(filter_hashes, hashes)
        mask = positions < len(filter_hashes)
        mask[mask] = filter_hashes[positions[mask]] == hashes[mask]
        return mask

    # -- payload access ------------------------------------------------

    @property
    def resident(self) -> bool:
        """Is the payload currently mapped/cached?"""
        return self._columns is not None

    def columns(self) -> Dict[str, np.ndarray]:
        """The payload columns, mapped lazily and verified once."""
        if self._columns is None:
            self._columns = self._load_payload()
        return self._columns

    def _load_payload(self) -> Dict[str, np.ndarray]:
        try:
            with open(self.path, "rb") as handle:
                mapping = mmap.mmap(handle.fileno(), 0,
                                    access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise FormatError(
                f"{self.path}: cannot map segment payload: {exc}") from exc
        view = memoryview(mapping)[self._payload_start:]
        if len(view) != self.meta.payload_bytes:
            view.release()
            mapping.close()
            raise FormatError(
                f"{self.path}: truncated segment payload "
                f"({len(view)} of {self.meta.payload_bytes} bytes)")
        if hashlib.sha256(view).hexdigest() != self.meta.payload_sha256:
            view.release()
            mapping.close()
            raise FormatError(
                f"{self.path}: segment payload checksum mismatch")
        try:
            columns = unpack_columns(view, source=self.path)
        except CorruptArtifact as exc:
            view.release()
            mapping.close()
            raise FormatError(str(exc)) from exc
        self._mmap = mapping
        return columns

    def release(self) -> None:
        """Drop the cached payload views (residency eviction)."""
        self._columns = None
        self._name_list = None
        mapping = self._mmap
        self._mmap = None
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:
                # A caller still holds a view; dropping our reference
                # lets the mapping die with the last array.
                pass

    # -- row materialisation -------------------------------------------

    def _name_at(self, nid: int) -> str:
        columns = self.columns()
        return _pool_string(columns["names_blob"],
                            columns["names_offsets"], nid)

    def _rdata_at(self, rid: int) -> str:
        columns = self.columns()
        return _pool_string(columns["rdata_blob"],
                            columns["rdata_offsets"], rid)

    def _day_at(self, did: int) -> str:
        return self.meta.days[did]

    def _entries_at(self, row_indexes: np.ndarray) -> List[RpDnsEntry]:
        columns = self.columns()
        return [RpDnsEntry(
            qname=self._name_at(int(columns["row_name_ids"][row])),
            qtype=RRTYPE_BY_CODE[int(columns["row_qtypes"][row])],
            rdata=self._rdata_at(int(columns["row_rdata_ids"][row])),
            first_seen=self._day_at(int(columns["row_day_ids"][row])))
            for row in row_indexes.tolist()]

    def _name_ids_for(self, name: str) -> List[int]:
        """Dense name ids whose pooled string equals ``name`` exactly
        (hash candidates are confirmed against the decoded string)."""
        columns = self.columns()
        candidates = np.nonzero(
            columns["name_hash_by_id"] == np.uint64(hash64(name)))[0]
        return [int(nid) for nid in candidates.tolist()
                if self._name_at(int(nid)) == name]

    def entries_for_name(self, name: str) -> List[RpDnsEntry]:
        """Rows owned by ``name``, in canonical segment row order."""
        nids = self._name_ids_for(name)
        if not nids:
            return []
        columns = self.columns()
        mask = np.isin(columns["row_name_ids"],
                       np.array(nids, dtype=np.int32))
        return self._entries_at(np.nonzero(mask)[0])

    def entries_for_rdata(self, rdata: str) -> List[RpDnsEntry]:
        """Rows carrying ``rdata``, in canonical segment row order."""
        columns = self.columns()
        candidates = np.nonzero(
            columns["rdata_hash_by_id"] == np.uint64(hash64(rdata)))[0]
        rids = [int(rid) for rid in candidates.tolist()
                if self._rdata_at(int(rid)) == rdata]
        if not rids:
            return []
        mask = np.isin(columns["row_rdata_ids"],
                       np.array(rids, dtype=np.int32))
        return self._entries_at(np.nonzero(mask)[0])

    def first_seen_of(self, key: RRKey) -> Optional[str]:
        """First-seen day of ``key`` if this segment stores it."""
        name, qtype, rdata = key
        nids = self._name_ids_for(name)
        if not nids:
            return None
        columns = self.columns()
        qcode = RRTYPE_CODES[qtype]
        mask = np.isin(columns["row_name_ids"],
                       np.array(nids, dtype=np.int32))
        mask &= columns["row_qtypes"] == np.int16(qcode)
        for row in np.nonzero(mask)[0].tolist():
            if self._rdata_at(int(columns["row_rdata_ids"][row])) == rdata:
                return self._day_at(int(columns["row_day_ids"][row]))
        return None

    def names_list(self) -> List[str]:
        """All distinct names, id-ordered (decoded once, cached until
        :meth:`release`)."""
        if self._name_list is None:
            columns = self.columns()
            self._name_list = decode_string_pool(columns["names_blob"],
                                                 columns["names_offsets"])
        return self._name_list

    def names_under_zone(self, zone: str) -> List[str]:
        """Distinct stored names strictly below ``zone``, id order."""
        suffix = "." + zone
        return [name for name in self.names_list()
                if name.endswith(suffix)]

    def rr_items(self) -> Iterator[Tuple[RRKey, str]]:
        """Every (RR key, first-seen day) row, canonical order."""
        columns = self.columns()
        names = self.names_list()
        rdatas = decode_string_pool(columns["rdata_blob"],
                                    columns["rdata_offsets"])
        days = self.meta.days
        for nid, qcode, rid, did in zip(
                columns["row_name_ids"].tolist(),
                columns["row_qtypes"].tolist(),
                columns["row_rdata_ids"].tolist(),
                columns["row_day_ids"].tolist()):
            yield (names[nid], RRTYPE_BY_CODE[qcode], rdatas[rid]), days[did]

    def new_counts_by_day(self) -> Dict[str, int]:
        """First-seen rows per accounted day (zero-row days included)."""
        columns = self.columns()
        counts = np.bincount(columns["row_day_ids"],
                             minlength=len(self.meta.days))
        return {day: int(count)
                for day, count in zip(self.meta.days, counts.tolist())}


def _sorted_member(sorted_hashes: np.ndarray, value: int) -> bool:
    position = int(np.searchsorted(sorted_hashes, np.uint64(value)))
    return (position < len(sorted_hashes)
            and int(sorted_hashes[position]) == value)


def open_segment(path: str) -> Segment:
    """Open one segment: validate header + filters, defer the payload.

    Raises :class:`~repro.pdns.io.FormatError` naming ``path`` on bad
    magic, bad/truncated header, unsupported version, short file, or a
    filter-block checksum mismatch.  Payload corruption surfaces (also
    as :class:`~repro.pdns.io.FormatError`) on first data access.
    """
    try:
        with open(path, "rb") as handle:
            prefix = handle.read(len(SEGMENT_MAGIC))
            if prefix != SEGMENT_MAGIC:
                raise FormatError(
                    f"{path}: not a pdns segment (bad magic)")
            header_line = handle.readline()
            if not header_line.endswith(b"\n"):
                raise FormatError(f"{path}: truncated segment header")
            try:
                header = json.loads(header_line.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise FormatError(
                    f"{path}: bad segment header: {exc}") from exc
            version = header.get("version")
            if version != SEGMENT_VERSION:
                raise FormatError(
                    f"{path}: unsupported segment version {version!r} "
                    f"(expected {SEGMENT_VERSION})")
            try:
                meta = SegmentMeta(
                    days=[str(day) for day in header["days"]],
                    n_names=int(header["n_names"]),
                    n_rows=int(header["n_rows"]),
                    payload_sha256=str(header["payload_sha256"]),
                    filters_bytes=int(header["filters_bytes"]),
                    payload_bytes=int(header["payload_bytes"]))
            except (KeyError, TypeError, ValueError) as exc:
                raise FormatError(
                    f"{path}: segment header missing fields: "
                    f"{exc}") from exc
            if not meta.days:
                raise FormatError(f"{path}: segment header lists no days")
            payload_start = handle.tell() + meta.filters_bytes
            filters_blob = handle.read(meta.filters_bytes)
            remaining = handle.seek(0, 2) - payload_start
    except OSError as exc:
        raise FormatError(f"{path}: cannot read segment: {exc}") from exc
    if len(filters_blob) != meta.filters_bytes or remaining < 0:
        raise FormatError(
            f"{path}: truncated segment filter block "
            f"({len(filters_blob)} of {meta.filters_bytes} bytes)")
    if remaining != meta.payload_bytes:
        raise FormatError(
            f"{path}: truncated segment payload "
            f"({remaining} of {meta.payload_bytes} bytes)")
    if (hashlib.sha256(filters_blob).hexdigest()
            != header.get("filters_sha256")):
        raise FormatError(f"{path}: segment filter checksum mismatch")
    try:
        filters = unpack_columns(filters_blob, source=path)
    except CorruptArtifact as exc:
        raise FormatError(str(exc)) from exc
    for required in ("name_hashes", "rdata_hashes", "zone_hashes",
                     "rr_hashes"):
        if required not in filters:
            raise FormatError(
                f"{path}: segment filter block missing {required!r}")
    return Segment(path=path, meta=meta, filters=filters,
                   payload_start=payload_start)
