"""LSM-flavoured segmented on-disk passive-DNS store.

:class:`SegmentedPdnsStore` is the year-scale sibling of the in-memory
:class:`~repro.pdns.database.PassiveDnsDatabase`: every ingested day
becomes one immutable columnar segment
(:mod:`repro.pdns.segments`) published atomically through the
:class:`~repro.core.artifact_store.ArtifactStore`, and queries union
only the segments whose prefilters match — a point lookup over a year
of daily segments opens a handful of files and never materialises the
full record set.  The store answers the same queries as the in-memory
database (``first_seen``, ``entries_for_name``, ``entries_for_rdata``,
``names_under_zone``, ``new_records_per_day``, wildcard aggregation)
with equal results; the oracle-equality tests in
``tests/pdns/test_store.py`` pin that contract at several segment
layouts.

Dedup across segments
---------------------
Ingesting a day first drops every RR key whose 64-bit hash misses all
existing segments' RR-hash filters (the common case for genuinely new
records), then confirms the surviving candidates exactly against only
the segments that might hold them.  First ingest wins, exactly like
the in-memory database; days that contribute zero new rows still
publish an (empty) segment so the per-day new-record ledger and day
roster survive round trips and compaction — except when the day is
already accounted for, in which case the re-ingest is idempotent and
publishes nothing.

Residency and compaction
------------------------
Opened payloads are kept on a small LRU (``max_resident``); evicted
segments drop their zero-copy views via
:meth:`~repro.pdns.segments.Segment.release`, bounding peak memory no
matter how many segments a query touches.  :meth:`compact` k-way-merges
segments into one; because segment bytes are a pure function of the
merged (rows, days) content, any merge order or grouping converges on
**byte-identical** output.  :meth:`prune` is the operational
counterpart — it *discards* the oldest segments to fit a byte budget
(a destructive retention policy, unlike the artifact caches where a
pruned blob is recomputable).

Corruption
----------
``on_corrupt="raise"`` (default) propagates
:class:`~repro.pdns.io.FormatError` naming the bad file;
``on_corrupt="skip"`` quarantines the segment — it stops serving
queries and is reported via :meth:`corrupt_segments` — whether the
damage surfaces at open (header/filters) or lazily at first payload
access (checksum mismatch).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Set, Tuple, TypeVar, Union)

import numpy as np

from repro.core.artifact_store import ArtifactStore
from repro.core.groups import matching_group_zone
from repro.core.interning import DayDigest
from repro.core.records import FpDnsDataset, RpDnsEntry, RRKey
from repro.pdns.database import IngestReport
from repro.pdns.io import FormatError
from repro.pdns.segments import (SEGMENT_SUFFIX, Segment,
                                 build_segment_bytes, hash64, hash_rr_key,
                                 open_segment)

__all__ = ["CompactionReport", "SegmentedPdnsStore", "StoreStats"]

T = TypeVar("T")

#: Payloads kept resident at once (LRU); queries touching more
#: segments than this stream through them, releasing as they go.
DEFAULT_MAX_RESIDENT = 4

#: Candidate-count threshold (relative to segment rows) above which a
#: membership check materialises the segment's key set once instead of
#: running one hash-probe per candidate.
_BULK_CHECK_FRACTION = 16

#: Quarantine reports retained (oldest dropped beyond this), so a
#: long-running skip-mode session cannot leak report entries.
MAX_CORRUPT_REPORTS = 256


@dataclass(frozen=True)
class StoreStats:
    """Operational snapshot of one segmented store."""

    root: str
    n_segments: int
    n_rows: int
    n_days: int
    total_bytes: int
    resident_segments: int
    segments_opened: int
    segments_skipped: int
    corrupt_segments: int

    def render(self) -> str:
        lines = [
            f"{self.root}: {self.n_segments} segments, "
            f"{self.n_rows} rows, {self.n_days} days, "
            f"{self.total_bytes} bytes",
            f"  resident payloads   {self.resident_segments}",
            f"  prefilter opened    {self.segments_opened}",
            f"  prefilter skipped   {self.segments_skipped}",
        ]
        if self.corrupt_segments:
            lines.append(f"  corrupt (skipped)   {self.corrupt_segments}")
        return "\n".join(lines)


@dataclass(frozen=True)
class CompactionReport:
    """What one :meth:`SegmentedPdnsStore.compact` pass did."""

    merged_segments: int
    merged_rows: int
    bytes_before: int
    bytes_after: int

    def render(self) -> str:
        return (f"compacted {self.merged_segments} segments "
                f"({self.merged_rows} rows): "
                f"{self.bytes_before} -> {self.bytes_after} bytes")


class SegmentedPdnsStore:
    """Append-only pDNS database over immutable on-disk segments.

    Drop-in query-compatible with
    :class:`~repro.pdns.database.PassiveDnsDatabase` (see
    :class:`~repro.pdns.database.PdnsBackend`); rows live on disk and
    only prefilter-matching segments are ever opened.
    """

    #: ``storage_bytes`` here is real on-disk segment bytes.
    storage_is_measured = True

    def __init__(self, root: Union[str, Path],
                 max_resident: int = DEFAULT_MAX_RESIDENT,
                 on_corrupt: str = "raise") -> None:
        if on_corrupt not in ("raise", "skip"):
            raise ValueError(
                f"on_corrupt must be 'raise' or 'skip', got {on_corrupt!r}")
        if max_resident < 1:
            raise ValueError(
                f"max_resident must be >= 1, got {max_resident}")
        self._artifacts = ArtifactStore(root, SEGMENT_SUFFIX)
        self._max_resident = max_resident
        self._on_corrupt = on_corrupt
        self._segments: List[Segment] = []
        self._resident: List[Segment] = []
        self._corrupt: List[Tuple[str, str]] = []
        #: Prefilter effectiveness counters (exposed via :meth:`stats`).
        self.segments_opened = 0
        self.segments_skipped = 0
        self._reload()

    # -- segment roster ------------------------------------------------

    @property
    def root(self) -> Path:
        return self._artifacts.root

    def _reload(self) -> None:
        """Re-open the segment roster from disk (sorted key order)."""
        for segment in self._resident:
            segment.release()
        self._resident.clear()
        self._segments.clear()
        for key in self._artifacts.keys():
            path = self._artifacts.path_for(key)
            try:
                self._segments.append(open_segment(str(path)))
            except FormatError as exc:
                if self._on_corrupt == "raise":
                    raise
                self._record_corrupt(str(path), exc)

    def _record_corrupt(self, path: str, error: FormatError) -> None:
        self._corrupt.append((path, str(error)))
        del self._corrupt[:-MAX_CORRUPT_REPORTS]

    def _quarantine(self, segment: Segment, error: FormatError) -> None:
        segment.release()
        if segment in self._segments:
            self._segments.remove(segment)
        if segment in self._resident:
            self._resident.remove(segment)
        self._record_corrupt(segment.path, error)

    def _with_segment(self, segment: Segment,
                      operation: Callable[[Segment], T]) -> Optional[T]:
        """Run ``operation`` against one opened segment payload.

        Counts the open, maintains the residency LRU, and — in
        ``skip`` mode — quarantines segments whose payload turns out
        corrupt instead of failing the query.
        """
        self.segments_opened += 1
        try:
            result = operation(segment)
        except FormatError as exc:
            if self._on_corrupt == "raise":
                raise
            self._quarantine(segment, exc)
            return None
        if segment in self._resident:
            self._resident.remove(segment)
        self._resident.append(segment)
        while len(self._resident) > self._max_resident:
            self._resident.pop(0).release()
        return result

    def corrupt_segments(self) -> List[Tuple[str, str]]:
        """(path, error) for every quarantined segment (skip mode)."""
        return list(self._corrupt)

    # -- ingestion -----------------------------------------------------

    def ingest_day(self, dataset: FpDnsDataset) -> IngestReport:
        """Ingest one fpDNS day (same contract as the in-memory DB)."""
        return self.ingest_rrs(dataset.day, dataset.distinct_rrs())

    def ingest_digest(self, digest: DayDigest) -> IngestReport:
        """Ingest a columnar day digest (deterministic RR-id order)."""
        return self.ingest_rrs(digest.day, digest.distinct_rr_keys_ordered())

    def ingest_rrs(self, day: str,
                   rr_keys: Iterable[RRKey]) -> IngestReport:
        """Ingest RR identity triples for ``day`` as one new segment.

        Records already stored (any earlier segment) are counted as
        duplicates and not stored again — first ingest wins, exactly
        like the in-memory database.  A day with zero new records
        still publishes an empty segment so the per-day ledger is
        preserved — unless the day is already accounted for, in which
        case nothing is published (re-ingesting an already-ingested
        day is idempotent: no redundant empty segment duplicating an
        existing roster).
        """
        keys = list(rr_keys)
        unique: Dict[RRKey, None] = {}
        for key in keys:
            unique.setdefault(key)
        known = self._known_keys(list(unique))
        fresh = {key: day for key in unique if key not in known}
        if not fresh and any(day in segment.meta.days
                             for segment in self._segments):
            return IngestReport(day=day, total_records_seen=len(keys),
                                new_records=0,
                                duplicate_records=len(keys))
        data = build_segment_bytes(fresh, days=[day])
        key = _segment_key(day, day, data)
        already_listed = {segment.path for segment in self._segments}
        path = self._artifacts.store_bytes(key, data)
        if str(path) not in already_listed:
            self._segments.append(open_segment(str(path)))
        return IngestReport(day=day, total_records_seen=len(keys),
                            new_records=len(fresh),
                            duplicate_records=len(keys) - len(fresh))

    def _known_keys(self, candidates: List[RRKey]) -> Set[RRKey]:
        """Which of ``candidates`` are already stored, prefilter-first."""
        if not candidates:
            return set()
        hashes = np.array([hash_rr_key(key) for key in candidates],
                          dtype=np.uint64)
        known: Set[RRKey] = set()
        for segment in list(self._segments):
            mask = segment.matching_rr_hashes(hashes)
            if not bool(mask.any()):
                self.segments_skipped += 1
                continue
            pending = [candidates[index]
                       for index in np.nonzero(mask)[0].tolist()
                       if candidates[index] not in known]
            if not pending:
                self.segments_skipped += 1
                continue
            known.update(self._confirm_present(segment, pending))
        return known

    def _confirm_present(self, segment: Segment,
                         candidates: List[RRKey]) -> Set[RRKey]:
        """Exact membership of hash-matching ``candidates``."""
        def check(seg: Segment) -> Set[RRKey]:
            if (len(candidates) * _BULK_CHECK_FRACTION
                    >= max(seg.meta.n_rows, 1)):
                stored = {key for key, _ in seg.rr_items()}
                return {key for key in candidates if key in stored}
            return {key for key in candidates
                    if seg.first_seen_of(key) is not None}
        present = self._with_segment(segment, check)
        return present if present is not None else set()

    # -- point and zone queries ----------------------------------------

    def __len__(self) -> int:
        return sum(segment.meta.n_rows for segment in self._segments)

    def __contains__(self, key: RRKey) -> bool:
        return self.first_seen(key) is not None

    def first_seen(self, key: RRKey) -> Optional[str]:
        """First-seen day of ``key``, or ``None`` (point lookup)."""
        target = hash_rr_key(key)
        for segment in list(self._segments):
            if not segment.may_contain_rr_hash(target):
                self.segments_skipped += 1
                continue
            day = self._with_segment(
                segment, lambda seg: seg.first_seen_of(key))
            if day is not None:
                return day
        return None

    def entries_for_name(self, name: str) -> List[RpDnsEntry]:
        """Stored records owned by ``name`` (segment order, canonical
        RR order within each segment)."""
        target = hash64(name)
        found: List[RpDnsEntry] = []
        for segment in list(self._segments):
            if not segment.may_contain_name_hash(target):
                self.segments_skipped += 1
                continue
            rows = self._with_segment(
                segment, lambda seg: seg.entries_for_name(name))
            if rows:
                found.extend(rows)
        return found

    def entries_for_rdata(self, rdata: str) -> List[RpDnsEntry]:
        """Stored records carrying ``rdata`` (segment order)."""
        target = hash64(rdata)
        found: List[RpDnsEntry] = []
        for segment in list(self._segments):
            if not segment.may_contain_rdata_hash(target):
                self.segments_skipped += 1
                continue
            rows = self._with_segment(
                segment, lambda seg: seg.entries_for_rdata(rdata))
            if rows:
                found.extend(rows)
        return found

    def names_under_zone(self, zone: str) -> Set[str]:
        """Distinct stored names strictly below ``zone``."""
        target = hash64(zone)
        names: Set[str] = set()
        for segment in list(self._segments):
            if not segment.may_contain_zone_hash(target):
                self.segments_skipped += 1
                continue
            under = self._with_segment(
                segment, lambda seg: seg.names_under_zone(zone))
            if under:
                names.update(under)
        return names

    # -- whole-store iteration (streaming, bounded residency) ----------

    def iter_rr_items(self) -> Iterator[Tuple[RRKey, str]]:
        """Every (RR key, first-seen day), segment by segment."""
        for segment in list(self._segments):
            items = self._with_segment(
                segment, lambda seg: list(seg.rr_items()))
            if items:
                for item in items:
                    yield item

    def iter_rr_keys(self) -> Iterator[RRKey]:
        for key, _ in self.iter_rr_items():
            yield key

    def iter_entries(self) -> Iterator[RpDnsEntry]:
        for (name, qtype, rdata), day in self.iter_rr_items():
            yield RpDnsEntry(name, qtype, rdata, day)

    def rr_keys(self) -> List[RRKey]:
        return list(self.iter_rr_keys())

    def entries(self) -> List[RpDnsEntry]:
        return list(self.iter_entries())

    def novel_keys(self, rr_keys: Iterable[RRKey]) -> List[RRKey]:
        """The subset of ``rr_keys`` not yet stored, input order kept
        (duplicates within the input stay duplicated — callers count
        them).  One prefilter pass instead of a per-key ``in`` loop."""
        keys = list(rr_keys)
        unique: Dict[RRKey, None] = {}
        for key in keys:
            unique.setdefault(key)
        known = self._known_keys(list(unique))
        return [key for key in keys if key not in known]

    # -- per-day ledger ------------------------------------------------

    def new_records_per_day(self) -> Dict[str, int]:
        """Day -> never-before-seen RRs (Figure 5 series), summed over
        segments; zero-record days are present with count 0."""
        totals: Dict[str, int] = {}
        for segment in list(self._segments):
            counts = self._with_segment(
                segment, lambda seg: seg.new_counts_by_day())
            if counts is not None:
                for day, count in counts.items():
                    totals[day] = totals.get(day, 0) + count
        return totals

    def ingested_days(self) -> List[str]:
        """Every accounted day, sorted (header-only; no payloads)."""
        days: Set[str] = set()
        for segment in self._segments:
            days.update(segment.meta.days)
        return sorted(days)

    def storage_bytes(self) -> int:
        """Actual on-disk segment bytes (measured, not modeled)."""
        return self._artifacts.total_bytes()

    # -- Section VI-C mitigation ---------------------------------------

    def wildcard_aggregated_size(
            self, disposable_groups: Set[Tuple[str, int]]) -> int:
        """Row count after collapsing disposable RRs onto wildcard
        rows (same contract as the in-memory database), streamed
        segment by segment."""
        kept = 0
        wildcards: Set[str] = set()
        for (name, _, _), _ in self.iter_rr_items():
            zone = matching_group_zone(name, disposable_groups)
            if zone is not None:
                wildcards.add("*." + zone)
            else:
                kept += 1
        return kept + len(wildcards)

    def split_by_disposable(
            self, disposable_groups: Set[Tuple[str, int]]
    ) -> Tuple[List[RRKey], List[RRKey]]:
        """Partition stored RRs into (disposable, non-disposable)."""
        disposable: List[RRKey] = []
        other: List[RRKey] = []
        for key in self.iter_rr_keys():
            if matching_group_zone(key[0], disposable_groups) is not None:
                disposable.append(key)
            else:
                other.append(key)
        return disposable, other

    # -- maintenance: compact / prune / stats --------------------------

    def compact(self, max_rows: Optional[int] = None) -> CompactionReport:
        """Merge segments with at most ``max_rows`` rows (default: all)
        into one.

        The merged segment carries the union of the inputs' rows *and*
        day rosters, so exact first-seen days, zero-record days and
        canonical RR order all survive; its bytes depend only on that
        merged content, never on merge order or grouping.
        """
        bytes_before = self.storage_bytes()
        mergeable = [segment for segment in self._segments
                     if max_rows is None or segment.meta.n_rows <= max_rows]
        if len(mergeable) < 2:
            return CompactionReport(merged_segments=0, merged_rows=0,
                                    bytes_before=bytes_before,
                                    bytes_after=bytes_before)
        rows: Dict[RRKey, str] = {}
        days: Set[str] = set()
        merged_paths: List[str] = []
        for segment in mergeable:
            items = self._with_segment(
                segment, lambda seg: list(seg.rr_items()))
            if items is None:
                continue  # quarantined mid-compaction (skip mode)
            for key, day in items:
                rows.setdefault(key, day)
            days.update(segment.meta.days)
            merged_paths.append(segment.path)
        if len(merged_paths) < 2:
            return CompactionReport(merged_segments=0, merged_rows=0,
                                    bytes_before=bytes_before,
                                    bytes_after=self.storage_bytes())
        data = build_segment_bytes(rows, days=sorted(days))
        merged_key = _segment_key(min(days), max(days), data)
        self._artifacts.store_bytes(merged_key, data)
        for path in merged_paths:
            # An identity merge (every other input contributed nothing,
            # e.g. a stray empty segment whose day roster duplicates a
            # sibling's) yields bytes — and therefore a content key —
            # equal to one input's; deleting that key would destroy the
            # freshly published output.
            key = _key_of_path(path)
            if key != merged_key:
                self._artifacts.delete(key)
        self._reload()
        return CompactionReport(merged_segments=len(merged_paths),
                                merged_rows=len(rows),
                                bytes_before=bytes_before,
                                bytes_after=self.storage_bytes())

    def prune(self, max_bytes: int) -> List[str]:
        """Drop the oldest segments (by publish time — the store never
        refreshes segment mtimes on read) until the store fits
        ``max_bytes``.  **Destructive**: pruned rows are gone (this is
        retention policy, not cache eviction); returns removed keys."""
        removed = self._artifacts.prune(max_bytes)
        if removed:
            self._reload()
        return removed

    def release(self) -> None:
        """Evict every resident payload (drops all zero-copy views)."""
        for segment in self._resident:
            segment.release()
        self._resident.clear()

    def stats(self) -> StoreStats:
        days: Set[str] = set()
        for segment in self._segments:
            days.update(segment.meta.days)
        return StoreStats(
            root=str(self.root),
            n_segments=len(self._segments),
            n_rows=len(self),
            n_days=len(days),
            total_bytes=self.storage_bytes(),
            resident_segments=len(self._resident),
            segments_opened=self.segments_opened,
            segments_skipped=self.segments_skipped,
            corrupt_segments=len(self._corrupt))

    def reset_counters(self) -> None:
        """Zero the prefilter hit/skip counters (bench instrumentation)."""
        self.segments_opened = 0
        self.segments_skipped = 0


def _segment_key(days_first: str, days_last: str, data: bytes) -> str:
    digest = hashlib.sha256(data).hexdigest()[:16]
    return f"{days_first}--{days_last}--{digest}"


def _key_of_path(path: str) -> str:
    name = Path(path).name
    return name[:-len(SEGMENT_SUFFIX)]
