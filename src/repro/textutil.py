"""Plain-text rendering helpers (tables, key/value blocks).

Kept dependency-free so every layer — core, analysis, experiments —
can render reports without import cycles.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_kv", "format_percent", "format_series"]



def format_percent(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Fixed-width text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()
    out = [line(headers), line(["-" * width for width in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def format_kv(pairs: Sequence[tuple], title: str = "") -> str:
    """Aligned key/value block."""
    width = max((len(str(key)) for key, _ in pairs), default=0)
    lines = [f"{str(key).ljust(width)} : {value}" for key, value in pairs]
    if title:
        lines = [title, "=" * len(title)] + lines
    return "\n".join(lines)


def format_series(name: str, values: Sequence[float],
                  digits: int = 3) -> str:
    rendered = ", ".join(f"{value:.{digits}f}" for value in values)
    return f"{name}: [{rendered}]"
