"""Passive-DNS storage study (Section VI-C).

After bootstrapping a pDNS-DB over the 13-day window, the paper found
88 % of all stored unique RRs were disposable and the daily share of
new disposable RRs rose from 68 % to 94 %; collapsing disposable names
onto wildcard rows shrank 129.7 M rows to 0.9 M (0.7 %).  The study
ingests a simulated window, measures the same quantities, and applies
the wildcard mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set, Tuple

from repro.analysis.dedup import DedupReport, run_dedup_window
from repro.pdns.database import (ROW_BYTES, PassiveDnsDatabase,
                                 PdnsBackend)
from repro.pdns.records import FpDnsDataset

__all__ = ["PdnsStorageResult", "run_pdns_storage_study"]


@dataclass
class PdnsStorageResult:
    """Outcome of the storage study.

    ``bytes_before`` is the backend's own accounting: the paper's
    48-bytes-per-row model for the in-memory database, *measured*
    on-disk segment bytes for the segmented store
    (``bytes_measured=True`` tells the two apart; the wildcard
    projection always uses the row model, since aggregation is a
    hypothetical rewrite).
    """

    dedup: DedupReport
    rows_before: int
    rows_after_wildcard: int
    bytes_before: int
    bytes_after_wildcard: int
    bytes_measured: bool = False

    @property
    def reduction_ratio(self) -> float:
        """Remaining fraction of the whole store after aggregation."""
        if not self.rows_before:
            return 0.0
        return self.rows_after_wildcard / self.rows_before

    @property
    def disposable_rows_before(self) -> int:
        return self.dedup.disposable_unique_rrs

    @property
    def disposable_reduction_ratio(self) -> float:
        """Remaining fraction of the *disposable* rows — the paper's
        headline number (129,674,213 -> 945,065 = 0.7 %)."""
        disposable = self.disposable_rows_before
        if not disposable:
            return 0.0
        non_disposable = self.rows_before - disposable
        wildcard_rows = self.rows_after_wildcard - non_disposable
        return max(wildcard_rows, 0) / disposable

    @property
    def disposable_fraction(self) -> float:
        return self.dedup.disposable_fraction

    def first_to_last_disposable_share(self) -> Tuple[float, float]:
        """Daily new-RR disposable share on first vs last window day."""
        return (self.dedup.first_day.disposable_share,
                self.dedup.last_day.disposable_share)


def run_pdns_storage_study(datasets: Sequence[FpDnsDataset],
                           disposable_groups: Set[Tuple[str, int]],
                           database: Optional[PdnsBackend] = None
                           ) -> PdnsStorageResult:
    """Ingest ``datasets`` into a fresh pDNS-DB and apply the
    wildcard-aggregation mitigation.

    ``database`` may be any empty :class:`~repro.pdns.database.
    PdnsBackend` — the in-memory database (default) or a
    :class:`~repro.pdns.store.SegmentedPdnsStore`, whose
    ``bytes_before`` is then real on-disk bytes rather than the
    row-model estimate.
    """
    backend: PdnsBackend = (database if database is not None
                            else PassiveDnsDatabase())
    measured = bool(getattr(backend, "storage_is_measured", False))
    dedup = run_dedup_window(datasets, disposable_groups, database=backend)
    rows_before = len(backend)
    rows_after = backend.wildcard_aggregated_size(disposable_groups)
    return PdnsStorageResult(
        dedup=dedup,
        rows_before=rows_before,
        rows_after_wildcard=rows_after,
        bytes_before=backend.storage_bytes(),
        bytes_after_wildcard=rows_after * ROW_BYTES,
        bytes_measured=measured)
