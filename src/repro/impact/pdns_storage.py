"""Passive-DNS storage study (Section VI-C).

After bootstrapping a pDNS-DB over the 13-day window, the paper found
88 % of all stored unique RRs were disposable and the daily share of
new disposable RRs rose from 68 % to 94 %; collapsing disposable names
onto wildcard rows shrank 129.7 M rows to 0.9 M (0.7 %).  The study
ingests a simulated window, measures the same quantities, and applies
the wildcard mitigation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.analysis.dedup import DedupReport, run_dedup_window
from repro.pdns.database import ROW_BYTES, PassiveDnsDatabase
from repro.pdns.records import FpDnsDataset

__all__ = ["PdnsStorageResult", "run_pdns_storage_study"]


@dataclass
class PdnsStorageResult:
    """Outcome of the storage study."""

    dedup: DedupReport
    rows_before: int
    rows_after_wildcard: int
    bytes_before: int
    bytes_after_wildcard: int

    @property
    def reduction_ratio(self) -> float:
        """Remaining fraction of the whole store after aggregation."""
        if not self.rows_before:
            return 0.0
        return self.rows_after_wildcard / self.rows_before

    @property
    def disposable_rows_before(self) -> int:
        return self.dedup.disposable_unique_rrs

    @property
    def disposable_reduction_ratio(self) -> float:
        """Remaining fraction of the *disposable* rows — the paper's
        headline number (129,674,213 -> 945,065 = 0.7 %)."""
        disposable = self.disposable_rows_before
        if not disposable:
            return 0.0
        non_disposable = self.rows_before - disposable
        wildcard_rows = self.rows_after_wildcard - non_disposable
        return max(wildcard_rows, 0) / disposable

    @property
    def disposable_fraction(self) -> float:
        return self.dedup.disposable_fraction

    def first_to_last_disposable_share(self) -> Tuple[float, float]:
        """Daily new-RR disposable share on first vs last window day."""
        return (self.dedup.first_day.disposable_share,
                self.dedup.last_day.disposable_share)


def run_pdns_storage_study(datasets: Sequence[FpDnsDataset],
                           disposable_groups: Set[Tuple[str, int]]
                           ) -> PdnsStorageResult:
    """Ingest ``datasets`` into a fresh pDNS-DB and apply the
    wildcard-aggregation mitigation."""
    database = PassiveDnsDatabase()
    dedup = run_dedup_window(datasets, disposable_groups, database=database)
    rows_before = len(database)
    rows_after = database.wildcard_aggregated_size(disposable_groups)
    return PdnsStorageResult(
        dedup=dedup,
        rows_before=rows_before,
        rows_after_wildcard=rows_after,
        bytes_before=rows_before * ROW_BYTES,
        bytes_after_wildcard=rows_after * ROW_BYTES)
