"""Section VI impact studies: DNS caching, DNSSEC validation, and
passive-DNS storage."""

from repro.impact.cache_pressure import (CachePressureComparison,
                                         LatencyModel, OccupancyReport,
                                         ScenarioStats, cache_occupancy,
                                         replay_events,
                                         run_cache_pressure_study)
from repro.impact.dnssec_cost import (DnssecScenarioResult, DnssecStudyResult,
                                      run_dnssec_study)
from repro.impact.negative_cache import (NegativeCacheScenario,
                                         NegativeCacheStudy,
                                         run_negative_cache_study)
from repro.impact.pdns_storage import PdnsStorageResult, run_pdns_storage_study

__all__ = [
    "CachePressureComparison", "LatencyModel", "OccupancyReport",
    "ScenarioStats", "cache_occupancy",
    "replay_events", "run_cache_pressure_study",
    "DnssecScenarioResult", "DnssecStudyResult", "run_dnssec_study",
    "NegativeCacheScenario", "NegativeCacheStudy",
    "run_negative_cache_study",
    "PdnsStorageResult", "run_pdns_storage_study",
]
