"""DNSSEC validation cost study (Section VI-B).

Under universal signing, every cache miss forces the validating
resolver to verify an RRSIG whose result — for a disposable name — is
never reused.  The study replays a query stream against a validating
cluster under three signing regimes:

* ``per-name`` — every zone signed conventionally; each disposable
  name carries its own signature (the pessimistic future).
* ``wildcard`` — disposable zones sign a single wildcard record whose
  signature is shared by every synthesised child (the paper's
  mitigation); validation results become cacheable.
* ``unsigned-disposable`` — only non-disposable zones signed, as a
  lower-bound reference.

Reported: signature validations, validation-cache effectiveness, and
extra cache memory for signatures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.dnssec import ValidatingResolverModel, ZoneSigner
from repro.dns.resolver import RdnsCluster
from repro.traffic.workload import QueryEvent

__all__ = ["DnssecScenarioResult", "DnssecStudyResult", "run_dnssec_study"]


@dataclass
class DnssecScenarioResult:
    """Validation accounting for one signing regime."""

    regime: str
    queries: int
    upstream_responses: int
    validations: int
    validations_cached: int
    signature_cache_bytes: int
    disposable_validations: int

    @property
    def validations_per_query(self) -> float:
        return self.validations / self.queries if self.queries else 0.0

    @property
    def validation_cache_hit_rate(self) -> float:
        total = self.validations + self.validations_cached
        return self.validations_cached / total if total else 0.0


@dataclass
class DnssecStudyResult:
    """All regimes side by side."""

    scenarios: Dict[str, DnssecScenarioResult]

    def wildcard_savings(self) -> float:
        """Fraction of per-name validations the wildcard regime avoids."""
        per_name = self.scenarios["per-name"].validations
        wildcard = self.scenarios["wildcard"].validations
        if per_name == 0:
            return 0.0
        return 1.0 - wildcard / per_name


def _run_regime(regime: str, signer: ZoneSigner,
                authority: AuthoritativeHierarchy,
                events: Sequence[QueryEvent],
                disposable_zones: Set[str],
                day_start: float, n_servers: int,
                cache_capacity: int) -> DnssecScenarioResult:
    cluster = RdnsCluster(authority, n_servers=n_servers,
                          cache_capacity=cache_capacity)
    validator = ValidatingResolverModel()
    queries = 0
    upstream = 0
    disposable_validations = 0
    for event in events:
        result = cluster.query(event.client_id, event.question,
                               day_start + event.timestamp)
        queries += 1
        if result.cache_hit or not result.response.answers:
            continue
        upstream += 1
        signed = signer.sign_response(result.response)
        performed = validator.process_upstream_response(signed)
        if event.category == "disposable":
            disposable_validations += performed
    return DnssecScenarioResult(
        regime=regime, queries=queries, upstream_responses=upstream,
        validations=validator.validations_performed,
        validations_cached=validator.validations_skipped_cached,
        signature_cache_bytes=validator.signature_cache_bytes,
        disposable_validations=disposable_validations)


def run_dnssec_study(authority: AuthoritativeHierarchy,
                     events: Sequence[QueryEvent],
                     all_zone_apexes: Set[str],
                     disposable_zone_apexes: Set[str],
                     day_start: float = 0.0,
                     n_servers: int = 2,
                     cache_capacity: int = 50_000) -> DnssecStudyResult:
    """Replay ``events`` under the three signing regimes."""
    regimes = {
        "per-name": ZoneSigner(signed_zones=set(all_zone_apexes)),
        "wildcard": ZoneSigner(signed_zones=set(all_zone_apexes),
                               wildcard_zones=set(disposable_zone_apexes)),
        "unsigned-disposable": ZoneSigner(
            signed_zones=set(all_zone_apexes) - set(disposable_zone_apexes),
            unsigned_subtrees=set(disposable_zone_apexes)),
    }
    scenarios = {
        regime: _run_regime(regime, signer, authority, events,
                            disposable_zone_apexes, day_start, n_servers,
                            cache_capacity)
        for regime, signer in regimes.items()
    }
    return DnssecStudyResult(scenarios=scenarios)
