"""Negative-caching (RFC 2308) study.

The paper observes that NXDOMAIN responses made up almost 40 % of the
traffic *above* the monitored resolvers but only 6 % below — "likely
because the resolvers in the monitored networks were not honoring the
negative cache, ignoring RFC 2308" (Section III-C1).  This study
replays the same query stream with negative caching off (the monitored
ISP's behaviour, the simulator default) and on, quantifying exactly
how much upstream NXDOMAIN traffic RFC 2308 compliance would have
removed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.resolver import RdnsCluster
from repro.traffic.workload import QueryEvent

__all__ = ["NegativeCacheScenario", "NegativeCacheStudy",
           "run_negative_cache_study"]


@dataclass
class NegativeCacheScenario:
    """Replay outcome under one negative-caching policy."""

    label: str
    negative_ttl: Optional[int]
    queries: int = 0
    upstream_total: int = 0
    upstream_nxdomain: int = 0
    negative_cache_hits: int = 0

    @property
    def nxdomain_share_above(self) -> float:
        return (self.upstream_nxdomain / self.upstream_total
                if self.upstream_total else 0.0)


@dataclass
class NegativeCacheStudy:
    without_rfc2308: NegativeCacheScenario
    with_rfc2308: NegativeCacheScenario

    @property
    def upstream_nxdomain_saved(self) -> int:
        return (self.without_rfc2308.upstream_nxdomain
                - self.with_rfc2308.upstream_nxdomain)

    @property
    def saved_fraction(self) -> float:
        baseline = self.without_rfc2308.upstream_nxdomain
        return self.upstream_nxdomain_saved / baseline if baseline else 0.0


def _replay(label: str, authority: AuthoritativeHierarchy,
            events: Sequence[QueryEvent], negative_ttl: Optional[int],
            n_servers: int, cache_capacity: int,
            day_start: float) -> NegativeCacheScenario:
    cluster = RdnsCluster(authority, n_servers=n_servers,
                          cache_capacity=cache_capacity,
                          negative_ttl=negative_ttl)
    scenario = NegativeCacheScenario(label=label, negative_ttl=negative_ttl)
    for event in events:
        result = cluster.query(event.client_id, event.question,
                               day_start + event.timestamp)
        scenario.queries += 1
        if result.cache_hit:
            if result.response.is_nxdomain:
                scenario.negative_cache_hits += 1
            continue
        scenario.upstream_total += 1
        if result.response.is_nxdomain:
            scenario.upstream_nxdomain += 1
    return scenario


def run_negative_cache_study(authority: AuthoritativeHierarchy,
                             events: Sequence[QueryEvent],
                             negative_ttl: int = 3600,
                             n_servers: int = 2,
                             cache_capacity: int = 50_000,
                             day_start: float = 0.0) -> NegativeCacheStudy:
    """Replay ``events`` with negative caching off, then on."""
    return NegativeCacheStudy(
        without_rfc2308=_replay("rfc2308-ignored", authority, events, None,
                                n_servers, cache_capacity, day_start),
        with_rfc2308=_replay("rfc2308-honored", authority, events,
                             negative_ttl, n_servers, cache_capacity,
                             day_start))
