"""DNS cache pressure study (Section VI-A).

Disposable entries fill LRU caches with records that will never be
re-queried; under a fixed memory allocation this prematurely evicts
useful non-disposable records, inflating upstream traffic and response
latency.  The study replays the *same* query stream against resolver
clusters of varying cache capacity, once as-is and once with the
disposable traffic removed, and compares:

* the cache hit rate experienced by *non-disposable* queries,
* live evictions (entries evicted with TTL remaining — the paper's
  "premature evictions"),
* upstream query volume, and
* mean resolution latency under a simple hit/miss latency model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.resolver import RdnsCluster
from repro.traffic.workload import QueryEvent

__all__ = ["LatencyModel", "ScenarioStats", "CachePressureComparison",
           "OccupancyReport", "cache_occupancy", "replay_events",
           "run_cache_pressure_study"]


@dataclass(frozen=True)
class LatencyModel:
    """Hit/miss latency costs in milliseconds."""

    cache_hit_ms: float = 1.0
    per_referral_ms: float = 30.0

    def query_latency(self, cache_hit: bool, referrals: int) -> float:
        if cache_hit:
            return self.cache_hit_ms
        return self.cache_hit_ms + referrals * self.per_referral_ms


@dataclass
class ScenarioStats:
    """Replay outcome for one (capacity, traffic-mix) scenario."""

    label: str
    capacity: int
    queries: int = 0
    cache_hits: int = 0
    upstream_queries: int = 0
    live_evictions: int = 0
    non_disposable_queries: int = 0
    non_disposable_hits: int = 0
    total_latency_ms: float = 0.0

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.queries if self.queries else 0.0

    @property
    def non_disposable_hit_rate(self) -> float:
        return (self.non_disposable_hits / self.non_disposable_queries
                if self.non_disposable_queries else 0.0)

    @property
    def mean_latency_ms(self) -> float:
        return self.total_latency_ms / self.queries if self.queries else 0.0


def replay_events(events: Sequence[QueryEvent],
                  cluster: RdnsCluster,
                  day_start: float,
                  label: str,
                  capacity: int,
                  skip_categories: Optional[Set[str]] = None,
                  latency: Optional[LatencyModel] = None) -> ScenarioStats:
    """Run ``events`` through ``cluster``, collecting scenario stats."""
    skip = skip_categories or set()
    latency_model = latency or LatencyModel()
    stats = ScenarioStats(label=label, capacity=capacity)
    for event in events:
        if event.category in skip:
            continue
        result = cluster.query(event.client_id, event.question,
                               day_start + event.timestamp)
        stats.queries += 1
        stats.total_latency_ms += latency_model.query_latency(
            result.cache_hit, result.upstream_referrals)
        if result.cache_hit:
            stats.cache_hits += 1
        else:
            stats.upstream_queries += 1
        if event.category != "disposable":
            stats.non_disposable_queries += 1
            if result.cache_hit:
                stats.non_disposable_hits += 1
    stats.live_evictions = sum(server.cache.stats.evicted_live
                               for server in cluster.servers)
    return stats


@dataclass
class OccupancyReport:
    """What the cache holds at one instant (Section VI-A's premise:
    'the DNS cache may start to be filled with entries that are highly
    unlikely to ever be reused')."""

    live_entries: int
    disposable_entries: int
    never_hit_entries: int
    disposable_never_hit: int

    @property
    def disposable_share(self) -> float:
        return (self.disposable_entries / self.live_entries
                if self.live_entries else 0.0)

    @property
    def never_hit_share(self) -> float:
        return (self.never_hit_entries / self.live_entries
                if self.live_entries else 0.0)

    @property
    def disposable_never_hit_rate(self) -> float:
        """Of the cached disposable entries, the share never re-queried
        while cached — the 'dead weight' fraction."""
        return (self.disposable_never_hit / self.disposable_entries
                if self.disposable_entries else 0.0)


def cache_occupancy(cluster: RdnsCluster, now: float,
                    disposable_groups: Set[Tuple[str, int]]) -> OccupancyReport:
    """Snapshot live cache contents across a cluster and attribute
    them to disposable (zone, depth) groups."""
    from repro.core.ranking import name_matches_groups

    live = disposable = never_hit = disposable_never_hit = 0
    for server in cluster.servers:
        for name, _rtype, _ttl, hits in server.cache.entries_snapshot(now):
            live += 1
            is_disposable = name_matches_groups(name, disposable_groups)
            if is_disposable:
                disposable += 1
            if hits == 0:
                never_hit += 1
                if is_disposable:
                    disposable_never_hit += 1
    return OccupancyReport(live_entries=live, disposable_entries=disposable,
                           never_hit_entries=never_hit,
                           disposable_never_hit=disposable_never_hit)


@dataclass
class CachePressureComparison:
    """Paired scenarios at one capacity."""

    capacity: int
    with_disposable: ScenarioStats
    without_disposable: ScenarioStats

    @property
    def hit_rate_degradation(self) -> float:
        """Drop in non-disposable hit rate caused by disposable load."""
        return (self.without_disposable.non_disposable_hit_rate
                - self.with_disposable.non_disposable_hit_rate)

    @property
    def extra_live_evictions(self) -> int:
        return (self.with_disposable.live_evictions
                - self.without_disposable.live_evictions)

    @property
    def upstream_inflation(self) -> float:
        """Relative upstream traffic increase for non-disposable names
        cannot be separated post-hoc, so this reports total upstream
        inflation normalised by the larger query count."""
        if not self.without_disposable.queries:
            return 0.0
        base = (self.without_disposable.upstream_queries
                / self.without_disposable.queries)
        loaded = (self.with_disposable.upstream_queries
                  / self.with_disposable.queries)
        return loaded - base


def run_cache_pressure_study(
        authority: AuthoritativeHierarchy,
        events: Sequence[QueryEvent],
        capacities: Iterable[int],
        day_start: float = 0.0,
        n_servers: int = 2,
        latency: Optional[LatencyModel] = None
) -> List[CachePressureComparison]:
    """Sweep cache capacities, pairing loaded vs disposable-free runs.

    Each scenario uses a fresh cluster against the shared (stateless)
    authoritative hierarchy so runs are independent.
    """
    comparisons = []
    for capacity in capacities:
        loaded_cluster = RdnsCluster(authority, n_servers=n_servers,
                                     cache_capacity=capacity)
        loaded = replay_events(events, loaded_cluster, day_start,
                               label="with-disposable", capacity=capacity,
                               latency=latency)
        clean_cluster = RdnsCluster(authority, n_servers=n_servers,
                                    cache_capacity=capacity)
        clean = replay_events(events, clean_cluster, day_start,
                              label="without-disposable", capacity=capacity,
                              skip_categories={"disposable"},
                              latency=latency)
        comparisons.append(CachePressureComparison(
            capacity=capacity, with_disposable=loaded,
            without_disposable=clean))
    return comparisons
