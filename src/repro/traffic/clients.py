"""Client population.

Models the ISP's subscriber base: each client has an activity weight
(heavy-tailed, as a few households dominate query volume) and a set of
service memberships — only clients that run the McAfee agent emit
``avqs.mcafee.com`` lookups, only the experiment cohort emits
``ipv6-exp`` probes, and so on.  This produces the paper's observation
that disposable names are "queried … by a handful of clients".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.traffic.population import DisposableService

__all__ = ["ClientPopulation"]


class ClientPopulation:
    """Subscribers with heavy-tailed activity and service cohorts."""

    def __init__(self, n_clients: int, services: Sequence[DisposableService],
                 seed: int = 1, activity_exponent: float = 1.2) -> None:
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        self.n_clients = n_clients
        rng = np.random.default_rng(seed)
        # Pareto-like activity: weight ~ rank^{-a}, shuffled so client
        # id carries no meaning.
        ranks = np.arange(1, n_clients + 1, dtype=float)
        weights = ranks ** -activity_exponent
        rng.shuffle(weights)
        self._activity_cdf = np.cumsum(weights)
        self._activity_cdf /= self._activity_cdf[-1]
        # Service cohorts: a random subset of clients per service.
        self._cohorts: Dict[str, np.ndarray] = {}
        for service in services:
            cohort_size = max(1, int(round(service.client_fraction * n_clients)))
            cohort = rng.choice(n_clients, size=cohort_size, replace=False)
            self._cohorts[service.name] = np.sort(cohort)

    def sample_client(self, rng: np.random.Generator) -> int:
        """Draw a client by activity weight."""
        return int(np.searchsorted(self._activity_cdf, rng.random(),
                                   side="left"))

    def sample_clients(self, rng: np.random.Generator,
                       size: int) -> np.ndarray:
        return np.searchsorted(self._activity_cdf, rng.random(size),
                               side="left")

    def cohort(self, service_name: str) -> np.ndarray:
        """Client ids subscribed to ``service_name``."""
        cohort = self._cohorts.get(service_name)
        if cohort is None:
            raise KeyError(f"unknown service: {service_name!r}")
        return cohort

    def sample_cohort_client(self, rng: np.random.Generator,
                             service_name: str) -> int:
        cohort = self.cohort(service_name)
        return int(cohort[int(rng.integers(0, len(cohort)))])

    def cohort_size(self, service_name: str) -> int:
        return len(self.cohort(service_name))
