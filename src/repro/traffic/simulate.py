"""Trace simulator: produces fpDNS datasets like the authors' taps did.

Drives the workload's daily query streams through an RDNS cluster with
a passive-DNS tap attached, producing one :class:`FpDnsDataset` per
simulated day.  Caches persist across days (the real cluster never
restarts at midnight), and the simulated calendar mirrors the paper's
measurement dates: six spot days across 2011 for the growth analyses
plus the 13 consecutive days (11/28–12/10) behind the rpDNS dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.labeling import LabeledZone
from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.resolver import RdnsCluster
from repro.pdns.collector import PassiveDnsCollector
from repro.pdns.records import FpDnsDataset
from repro.traffic.diurnal import SECONDS_PER_DAY
from repro.traffic.population import PopulationConfig, ZonePopulation
from repro.traffic.workload import WorkloadConfig, WorkloadModel

__all__ = ["MeasurementDate", "PAPER_DATES", "RPDNS_WINDOW_DATES",
           "SimulatorConfig", "TraceSimulator", "apply_ttl_schedule"]


@dataclass(frozen=True)
class MeasurementDate:
    """One simulated calendar day.

    ``year_fraction`` positions the day within the simulated year and
    controls the disposable-traffic growth; ``day_index`` is the
    absolute day number used for the cache timebase.
    """

    label: str
    day_index: int
    year_fraction: float


def _paper_dates() -> List[MeasurementDate]:
    """The six spot dates of Figure 13 / Tables I-II."""
    spec = [("2011-02-01", 31, 0.00), ("2011-09-02", 244, 0.64),
            ("2011-09-13", 255, 0.67), ("2011-11-14", 317, 0.86),
            ("2011-11-29", 332, 0.90), ("2011-12-30", 363, 1.00)]
    return [MeasurementDate(label, day, fraction)
            for label, day, fraction in spec]


def _rpdns_window() -> List[MeasurementDate]:
    """The 13 consecutive days 2011-11-28 .. 2011-12-10 (Figures 5, 15)."""
    dates = []
    november = [f"2011-11-{day:02d}" for day in range(28, 31)]
    december = [f"2011-12-{day:02d}" for day in range(1, 11)]
    for offset, label in enumerate(november + december):
        day_index = 331 + offset
        dates.append(MeasurementDate(label, day_index,
                                     0.90 + 0.002 * offset))
    return dates


PAPER_DATES: List[MeasurementDate] = _paper_dates()
RPDNS_WINDOW_DATES: List[MeasurementDate] = _rpdns_window()


@dataclass
class SimulatorConfig:
    """Cluster and cache parameters for the simulated ISP."""

    n_servers: int = 4
    cache_capacity: int = 30_000
    min_ttl: int = 0
    negative_ttl: Optional[int] = None  # the monitored ISP ignored RFC 2308
    population: PopulationConfig = field(default_factory=PopulationConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError(f"need at least one server, got {self.n_servers}")
        if self.cache_capacity < 1:
            raise ValueError(
                f"cache_capacity must be >= 1, got {self.cache_capacity}")
        if self.min_ttl < 0:
            raise ValueError(f"min_ttl must be >= 0, got {self.min_ttl}")
        if self.negative_ttl is not None and self.negative_ttl < 0:
            raise ValueError(
                f"negative_ttl must be >= 0, got {self.negative_ttl}")


def apply_ttl_schedule(population: ZonePopulation,
                       authority: AuthoritativeHierarchy,
                       year_fraction: float) -> None:
    """Publish each service's TTL for this point of the year
    (Figure 14: operators moved from ~1 s to ~300 s during 2011).

    Module-level so the sharded workers of
    :mod:`repro.traffic.parallel` apply the identical schedule to
    their private authority copies.
    """
    from repro.dns.zone import WildcardZone

    for service in population.services:
        zone = authority.zone_at(service.zone)
        if isinstance(zone, WildcardZone):
            zone.ttl = service.ttl_at(year_fraction)


class TraceSimulator:
    """End-to-end synthetic trace generation."""

    def __init__(self, config: Optional[SimulatorConfig] = None) -> None:
        self.config = config or SimulatorConfig()
        self.population = ZonePopulation(self.config.population)
        self.workload = WorkloadModel(self.population, self.config.workload)
        self.authority = self.population.build_authority()
        self.collector = PassiveDnsCollector(day="warmup")
        self.cluster = RdnsCluster(
            self.authority,
            n_servers=self.config.n_servers,
            cache_capacity=self.config.cache_capacity,
            min_ttl=self.config.min_ttl,
            negative_ttl=self.config.negative_ttl,
            taps=[self.collector])

    # -- running ----------------------------------------------------------

    def _apply_ttl_schedule(self, year_fraction: float) -> None:
        apply_ttl_schedule(self.population, self.authority, year_fraction)

    def run_day(self, date: MeasurementDate,
                n_events: Optional[int] = None) -> FpDnsDataset:
        """Simulate one day and return its fpDNS dataset.

        One collector roll per day: ``begin_day`` opens the dataset,
        ``end_day`` closes and returns it (the collector retains
        nothing by default, so long calendars stay bounded-memory).
        """
        self._apply_ttl_schedule(date.year_fraction)
        self.collector.begin_day(date.label)
        events = self.workload.generate_day(
            date.day_index, year_fraction=date.year_fraction,
            n_events=n_events)
        day_start = date.day_index * SECONDS_PER_DAY
        query = self.cluster.query
        for event in events:
            query(event.client_id, event.question,
                  day_start + event.timestamp)
        return self.collector.end_day()

    def run_days(self, dates: Sequence[MeasurementDate],
                 n_events: Optional[int] = None) -> List[FpDnsDataset]:
        """Simulate several days, returning one dataset per day."""
        return [self.run_day(date, n_events=n_events) for date in dates]

    # -- ground truth --------------------------------------------------------

    def disposable_truth(self) -> Set[Tuple[str, int]]:
        return self.population.disposable_truth()

    def labeled_zones(self) -> List[LabeledZone]:
        return self.population.labeled_zones()
