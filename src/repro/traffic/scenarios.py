"""Named workload scenarios.

Ready-made :class:`SimulatorConfig` presets for the situations the
paper discusses or that reviewers typically probe, so studies beyond
the default calibration are one constructor away:

* ``paper_year``       — the default calibrated 2011 workload.
* ``no_growth``        — disposable share frozen at its February level
  (the counterfactual behind Figure 13's growth claims).
* ``disposable_heavy`` — the "near future" of Section VI: disposable
  traffic doubled, for stress-testing caches/DNSSEC/pDNS.
* ``av_heavy``         — anti-virus cloud-lookup dominated mix (every
  client runs an agent), the McAfee-style deployment.
* ``cdn_heavy``        — CDN-skewed traffic probing the miner's
  borderline class (the paper's 0.6 % CDN findings).
* ``rfc2308_compliant``— resolvers honor negative caching, removing
  the paper's 40 %-NXDOMAIN-above anomaly.

All scenarios share the population seed so zones are comparable across
scenarios; only traffic composition and resolver policy differ.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List

from repro.traffic.population import PopulationConfig
from repro.traffic.simulate import SimulatorConfig
from repro.traffic.workload import WorkloadConfig

__all__ = ["SCENARIOS", "scenario", "scenario_names"]


def _base(events_per_day: int, n_clients: int) -> SimulatorConfig:
    return SimulatorConfig(
        population=PopulationConfig(),
        workload=WorkloadConfig(events_per_day=events_per_day,
                                n_clients=n_clients))


def paper_year(events_per_day: int = 60_000,
               n_clients: int = 400) -> SimulatorConfig:
    """The default calibrated 2011 workload."""
    return _base(events_per_day, n_clients)


def no_growth(events_per_day: int = 60_000,
              n_clients: int = 400) -> SimulatorConfig:
    config = _base(events_per_day, n_clients)
    start = config.workload.disposable_share_start
    config.workload = replace(config.workload, disposable_share_end=start)
    return config


def disposable_heavy(events_per_day: int = 60_000,
                     n_clients: int = 400) -> SimulatorConfig:
    config = _base(events_per_day, n_clients)
    workload = config.workload
    config.workload = replace(
        workload,
        disposable_share_start=min(workload.disposable_share_start * 2, 0.5),
        disposable_share_end=min(workload.disposable_share_end * 2, 0.55))
    return config


def av_heavy(events_per_day: int = 60_000,
             n_clients: int = 400) -> SimulatorConfig:
    """AV-cloud-lookup dominated disposable mix: the GTI-style and
    sample-lookup services carry 4x their calibrated weight."""
    config = disposable_heavy(events_per_day, n_clients)
    config.population = replace(
        config.population,
        service_weight_overrides={"gti": 4.0, "sophos": 4.0,
                                  "avcheck": 2.0})
    return config


def cdn_heavy(events_per_day: int = 60_000,
              n_clients: int = 400) -> SimulatorConfig:
    config = _base(events_per_day, n_clients)
    workload = config.workload
    config.workload = replace(workload, cdn_share=0.18,
                              longtail_share=0.08)
    return config


def rfc2308_compliant(events_per_day: int = 60_000,
                      n_clients: int = 400) -> SimulatorConfig:
    config = _base(events_per_day, n_clients)
    config.negative_ttl = 3_600
    return config


SCENARIOS: Dict[str, Callable[..., SimulatorConfig]] = {
    "paper_year": paper_year,
    "no_growth": no_growth,
    "disposable_heavy": disposable_heavy,
    "av_heavy": av_heavy,
    "cdn_heavy": cdn_heavy,
    "rfc2308_compliant": rfc2308_compliant,
}


def scenario(name: str, **kwargs: object) -> SimulatorConfig:
    """Build a named scenario's config; kwargs override scale knobs."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"available: {sorted(SCENARIOS)}") from None
    return factory(**kwargs)


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)
