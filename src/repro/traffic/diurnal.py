"""Diurnal arrival process.

Figure 2 shows the classic human-driven diurnal pattern: volume drops
after midnight and rises around 10:00 local time.  Event timestamps are
drawn from a nonhomogeneous process whose hourly intensity follows a
smooth day curve with a 04:00 trough and an evening peak.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DiurnalProfile", "SECONDS_PER_DAY"]

SECONDS_PER_DAY = 86_400


class DiurnalProfile:
    """Relative query intensity over the 24 hours of a day.

    ``base`` is the floor intensity (machine traffic never sleeps);
    the human component is a raised cosine with its trough at
    ``trough_hour``.
    """

    def __init__(self, base: float = 0.25, trough_hour: float = 4.0) -> None:
        if not 0.0 <= base <= 1.0:
            raise ValueError(f"base must be in [0, 1], got {base}")
        self.base = base
        self.trough_hour = trough_hour % 24.0

    def intensity(self, hour: float) -> float:
        """Relative intensity at ``hour`` (may exceed 1 slightly)."""
        phase = 2.0 * np.pi * ((hour - self.trough_hour) / 24.0)
        human = 0.5 * (1.0 - np.cos(phase))
        return self.base + (1.0 - self.base) * float(human)

    def sample_timestamps(self, rng: np.random.Generator, n_events: int,
                          day_seconds: float = SECONDS_PER_DAY) -> np.ndarray:
        """Draw ``n_events`` seconds-of-day in ``[0, day_seconds)``, sorted.

        Uses inverse-CDF sampling over a per-minute discretisation of
        the intensity curve.  ``day_seconds`` lets the simulator run a
        *compressed* day: the diurnal shape is preserved but wall-clock
        inter-arrival gaps shrink, which is how a laptop-scale event
        count reproduces ISP-scale cache dynamics (at 10^5 events per
        day the real 86 400 s day would leave even popular records
        expiring between queries, something that never happens at the
        monitored ISP's billions of queries per day).
        """
        if n_events < 0:
            raise ValueError(f"n_events must be >= 0, got {n_events}")
        if day_seconds <= 0:
            raise ValueError(f"day_seconds must be > 0, got {day_seconds}")
        if n_events == 0:
            return np.empty(0)
        minutes = np.arange(1440)
        weights = np.array([self.intensity(minute / 60.0)
                            for minute in minutes])
        cdf = np.cumsum(weights)
        cdf /= cdf[-1]
        u = rng.random(n_events)
        minute_idx = np.searchsorted(cdf, u, side="left")
        seconds = minute_idx * 60 + rng.random(n_events) * 60.0
        return np.sort(seconds * (day_seconds / SECONDS_PER_DAY))

    def hourly_weights(self) -> np.ndarray:
        """Normalised per-hour expected share of a day's traffic."""
        weights = np.array([self.intensity(h + 0.5) for h in range(24)])
        return weights / weights.sum()
