"""Disposable-domain name generators.

Each generator reproduces one of the real-world naming schemes the
paper documents (Figure 6 and Section V-C): machine-telemetry names
(eSoft), anti-virus file-reputation hashes (McAfee GTI), measurement
experiments (Google IPv6), DNSBL lookups, tracking/analytics beacons,
and CDN-style sharded content names (the near-miss class that produced
the paper's 0.6 % CDN findings).

A generator owns a disposable zone apex and emits child names at a
*fixed depth* — disposable domains under the same zone section always
have the same number of labels, a structural property the features
rely on.  ``reuse_probability`` controls the occasional re-query of a
recent name ("disposable domains are not strictly looked up once").
"""

from __future__ import annotations

import string
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

import numpy as np

from repro.core.names import label_count

__all__ = [
    "DisposableNameGenerator",
    "TelemetryNameGenerator",
    "AvHashNameGenerator",
    "MeasurementNameGenerator",
    "DnsblNameGenerator",
    "TrackingNameGenerator",
    "CdnShardNameGenerator",
]

_BASE36 = string.digits + string.ascii_lowercase


def _random_base36(rng: np.random.Generator, length: int) -> str:
    indices = rng.integers(0, len(_BASE36), size=length)
    return "".join(_BASE36[i] for i in indices)


def _random_digits(rng: np.random.Generator, length: int) -> str:
    indices = rng.integers(0, 10, size=length)
    return "".join(string.digits[i] for i in indices)


class DisposableNameGenerator:
    """Base class: fixed-depth name generation under one zone apex."""

    def __init__(self, apex: str, reuse_probability: float = 0.1,
                 reuse_window: int = 64) -> None:
        if not 0.0 <= reuse_probability < 1.0:
            raise ValueError(
                f"reuse_probability must be in [0, 1), got {reuse_probability}")
        self.apex = apex
        self.reuse_probability = reuse_probability
        self._recent: Deque[str] = deque(maxlen=reuse_window)
        self.generated = 0
        self.reused = 0

    def _fresh_name(self, rng: np.random.Generator) -> str:  # pragma: no cover
        raise NotImplementedError

    def generate(self, rng: np.random.Generator) -> str:
        """Next name to query: usually fresh, occasionally a re-query."""
        if self._recent and rng.random() < self.reuse_probability:
            self.reused += 1
            index = int(rng.integers(0, len(self._recent)))
            return self._recent[index]
        name = self._fresh_name(rng)
        self._recent.append(name)
        self.generated += 1
        return name

    @property
    def depth(self) -> int:
        """Label count of generated names (fixed per generator)."""
        probe = self._fresh_name(np.random.default_rng(0))
        return label_count(probe)


class TelemetryNameGenerator(DisposableNameGenerator):
    """eSoft-style system telemetry encoded in the name (Fig. 6 i).

    ``load-0-p-NN.up-NNNNNN.mem-A-B-0-p-NN.swap-C-D-0-p-NN.
    NNNNNNN.NNNNNNNNNN.<apex>``
    """

    def _fresh_name(self, rng: np.random.Generator) -> str:
        load = f"load-0-p-{int(rng.integers(0, 100)):02d}"
        up = f"up-{int(rng.integers(1_000, 2_000_000))}"
        mem = (f"mem-{int(rng.integers(10_000_000, 600_000_000))}-"
               f"{int(rng.integers(10_000_000, 600_000_000))}-0-p-"
               f"{int(rng.integers(0, 100)):02d}")
        swap = (f"swap-{int(rng.integers(10_000_000, 600_000_000))}-"
                f"{int(rng.integers(10_000_000, 600_000_000))}-0-p-"
                f"{int(rng.integers(0, 100)):02d}")
        device_id = _random_digits(rng, 7)
        session_id = _random_digits(rng, 10)
        return f"{load}.{up}.{mem}.{swap}.{device_id}.{session_id}.{self.apex}"


class AvHashNameGenerator(DisposableNameGenerator):
    """McAfee-GTI-style file-reputation lookup (Fig. 6 ii).

    ``0.0.0.0.1.0.0.4e.<26-char base36 file hash>.<apex>`` — note the
    constant low-entropy leftmost labels before the hash; the adjacent
    label that matters for the features is the one right above the
    zone, which is the high-entropy hash.
    """

    def _fresh_name(self, rng: np.random.Generator) -> str:
        file_hash = _random_base36(rng, 26)
        return f"0.0.0.0.1.0.0.4e.{file_hash}.{self.apex}"


class MeasurementNameGenerator(DisposableNameGenerator):
    """Google-IPv6-experiment-style signed probe (Fig. 6 iii).

    ``p2.<13-char>.<16-char>.<6-digit>.i1.ds.<apex>``
    """

    _PROBE_KINDS = (("i1", "ds"), ("i2", "v4"), ("s1", "v4"), ("i2", "ds"))

    def _fresh_name(self, rng: np.random.Generator) -> str:
        token_a = _random_base36(rng, 13)
        token_b = _random_base36(rng, 16)
        experiment_id = _random_digits(rng, 6)
        kind, transport = self._PROBE_KINDS[int(rng.integers(0, 4))]
        return (f"p2.{token_a}.{token_b}.{experiment_id}."
                f"{kind}.{transport}.{self.apex}")


class DnsblNameGenerator(DisposableNameGenerator):
    """DNS blocklist lookup: reversed IP under the list zone.

    ``d.c.b.a.<apex>`` for IP a.b.c.d.  RDATA semantics (127.0.0.x
    verdict codes) are carried by the answering zone, not here.
    """

    def _fresh_name(self, rng: np.random.Generator) -> str:
        octets = rng.integers(1, 255, size=4)
        return ".".join(str(int(o)) for o in reversed(octets)) + "." + self.apex


class TrackingNameGenerator(DisposableNameGenerator):
    """Cookie-tracking / analytics beacon: one random token label."""

    def __init__(self, apex: str, token_length: int = 12,
                 reuse_probability: float = 0.1, reuse_window: int = 64) -> None:
        super().__init__(apex, reuse_probability, reuse_window)
        self.token_length = token_length

    def _fresh_name(self, rng: np.random.Generator) -> str:
        return f"{_random_base36(rng, self.token_length)}.{self.apex}"


class CdnShardNameGenerator(DisposableNameGenerator):
    """CDN content hostname: ``e<object>.g<shard>.<apex>``.

    Unlike the truly disposable schemes, object ids are drawn from a
    Zipf-ish popularity (delegated to the caller via ``object_pool``):
    popular objects repeat heavily, the long tail looks one-time.  This
    is the class the paper found at the edge of the definition (91
    CDN zones flagged, 0.6 % of findings).
    """

    def __init__(self, apex: str, n_objects: int = 20_000, n_shards: int = 8,
                 popularity_exponent: float = 1.1) -> None:
        super().__init__(apex, reuse_probability=0.0)
        from repro.traffic.zipf import ZipfSampler
        self.n_objects = n_objects
        self.n_shards = n_shards
        self._popularity = ZipfSampler(n_objects, popularity_exponent)

    def _fresh_name(self, rng: np.random.Generator) -> str:
        object_id = self._popularity.sample_one(rng)
        shard = object_id % self.n_shards
        return f"e{object_id}.g{shard}.{self.apex}"

    def generate(self, rng: np.random.Generator) -> str:
        # Popularity-driven: no explicit reuse window; repeats come
        # from the Zipf head instead.
        self.generated += 1
        return self._fresh_name(rng)
