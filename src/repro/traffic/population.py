"""The synthetic ISP's zone population.

Builds every zone the workload queries, mirroring the traffic classes
the paper observes at the ISP:

* **popular sites** — a few hundred Alexa-style 2LDs with hand-named
  subdomains (www, mail, api, …), Zipf popularity, normal TTLs.  These
  are the paper's non-disposable labeled class.
* **long-tail sites** — thousands of ordinary registered 2LDs visited
  rarely (once or twice a day by one client).  They dominate the DNS
  long tail *without* being disposable — which is why Tables I and II
  report the disposable share *of* the tail rather than equating the
  two.
* **Google-like service** — popular hostnames plus the
  ``ipv6-exp.l.google.com`` measurement experiment whose volume grows
  across the year (Section V-C's "Google operates 58 % of RRs").
* **Akamai-like CDN** — wildcard content zones with Zipf object
  popularity; unpopular objects look one-time (the paper's 0.6 % CDN
  borderline findings).
* **disposable services** — the Figure 6 schemes plus a configurable
  crowd of smaller tracking/AV/DNSBL zones, so the labeled training
  set has hundreds of positive zones like the paper's 398.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.labeling import LabeledZone
from repro.dns.authority import AuthoritativeHierarchy
from repro.dns.message import RRType
from repro.dns.zone import StaticZone, WildcardZone
from repro.traffic.generators import (AvHashNameGenerator,
                                      CdnShardNameGenerator,
                                      DisposableNameGenerator,
                                      DnsblNameGenerator,
                                      MeasurementNameGenerator,
                                      TelemetryNameGenerator,
                                      TrackingNameGenerator)

__all__ = ["PopulationConfig", "DisposableService", "PopularSite",
           "ZonePopulation"]

_WORDS_A = (
    "news", "shop", "media", "cloud", "travel", "photo", "game", "music",
    "sport", "tech", "food", "auto", "home", "book", "movie", "health",
    "bank", "weather", "mail", "social", "video", "job", "craft", "garden",
    "pixel", "stream", "daily", "metro", "global", "prime", "rapid", "solid",
)
_WORDS_B = (
    "hub", "zone", "spot", "base", "port", "land", "city", "world", "line",
    "press", "point", "center", "market", "store", "works", "link", "path",
    "nest", "forge", "field", "wave", "peak", "gate", "dock", "yard", "mill",
)
_SUBDOMAIN_LABELS = (
    "www", "mail", "m", "api", "img", "static", "blog", "shop", "login",
    "news", "video", "dev", "app", "search", "maps", "docs", "forum",
    "secure", "cdn", "assets",
)
_LONGTAIL_TLDS = ("com", "net", "org", "info", "biz", "us", "co.uk", "de")
_TTL_CHOICES = (300, 900, 3600, 14400, 86400)
_TTL_WEIGHTS = (0.25, 0.2, 0.3, 0.15, 0.1)


@dataclass
class PopulationConfig:
    """Size and composition knobs for the synthetic zone population."""

    n_popular_sites: int = 220
    n_longtail_sites: int = 8_000
    n_extra_disposable: int = 40
    subdomains_per_site: Tuple[int, int] = (6, 12)  # inclusive range
    cdn_objects: int = 30_000
    seed: int = 20110201
    # Multipliers applied to matching services' base_weight (matched by
    # substring of the service name, e.g. {"gti": 4.0} boosts the AV
    # cloud-lookup service) — used by the scenario library.
    service_weight_overrides: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.n_popular_sites < 1:
            raise ValueError("need at least one popular site")
        low, high = self.subdomains_per_site
        if low < 1 or high < low:
            raise ValueError(
                f"invalid subdomains_per_site range: {self.subdomains_per_site}")


@dataclass
class PopularSite:
    """One popular 2LD with its hostnames."""

    zone: str
    hostnames: List[str]
    ttl: int


@dataclass
class DisposableService:
    """One disposable-domain-emitting service.

    ``base_weight`` is the service's share of disposable traffic at the
    start of the simulated year; ``growth`` multiplies it by the end
    (Google's experiment grows, most others stay flat).
    ``client_fraction`` is the share of clients running the software
    that emits these queries.
    """

    name: str
    generator: DisposableNameGenerator
    ttl: int
    base_weight: float
    client_fraction: float
    growth: float = 1.0
    rdata_mode: str = "per-name"
    answer_count: int = 1  # RRs per answered name (round-robin style)
    # Figure 14: early in 2011 many operators used near-zero TTLs
    # (28 % of disposable domains at TTL = 1 s in February) and moved
    # to ~300 s by December.  A service with ``early_ttl`` set serves
    # that TTL in the first half of the year and ``ttl`` afterwards.
    early_ttl: Optional[int] = None

    @property
    def zone(self) -> str:
        return self.generator.apex

    @property
    def depth(self) -> int:
        return self.generator.depth

    def weight_at(self, year_fraction: float) -> float:
        """Interpolated traffic weight at ``year_fraction`` in [0, 1]."""
        return self.base_weight * (1.0 + (self.growth - 1.0) * year_fraction)

    def ttl_at(self, year_fraction: float) -> int:
        """The TTL the operator publishes at this point of the year."""
        if self.early_ttl is not None and year_fraction < 0.5:
            return self.early_ttl
        return self.ttl


class ZonePopulation:
    """All zones of the synthetic Internet, with ground truth."""

    GOOGLE_ZONE = "google.com"
    GOOGLE_HOSTS = ("www.google.com", "mail.google.com", "apis.google.com",
                    "clients1.google.com", "ssl.gstatic.google.com",
                    "accounts.google.com", "drive.google.com",
                    "docs.google.com", "play.google.com", "fonts.google.com")
    GOOGLE_MEASUREMENT_ZONE = "ipv6-exp.l.google.com"
    AKAMAI_APEXES = ("akamai.net", "akamaiedge.net")

    def __init__(self, config: Optional[PopulationConfig] = None) -> None:
        self.config = config or PopulationConfig()
        rng = np.random.default_rng(self.config.seed)
        self.popular_sites = self._build_popular_sites(rng)
        self.longtail_sites = self._build_longtail_sites(rng)
        self.cdn_generators = [
            CdnShardNameGenerator(apex, n_objects=self.config.cdn_objects,
                                  popularity_exponent=1.3)
            for apex in self.AKAMAI_APEXES
        ]
        self.services = self._build_services(rng)
        self._apply_weight_overrides()
        self.registered_2lds = self._collect_registered_2lds()

    def _apply_weight_overrides(self) -> None:
        overrides = self.config.service_weight_overrides or {}
        for pattern, multiplier in overrides.items():
            matched = False
            for service in self.services:
                if pattern in service.name or pattern in service.zone:
                    service.base_weight *= multiplier
                    matched = True
            if not matched:
                raise ValueError(
                    f"service weight override {pattern!r} matched nothing")

    # -- construction ----------------------------------------------------

    def _build_popular_sites(self, rng: np.random.Generator) -> List[PopularSite]:
        combos = [a + b for a in _WORDS_A for b in _WORDS_B]
        rng.shuffle(combos)
        low, high = self.config.subdomains_per_site
        sites: List[PopularSite] = []
        for i in range(self.config.n_popular_sites):
            zone = combos[i] + ".com"
            count = int(rng.integers(low, high + 1))
            labels = list(rng.choice(_SUBDOMAIN_LABELS,
                                     size=min(count, len(_SUBDOMAIN_LABELS)),
                                     replace=False))
            hostnames = [f"{label}.{zone}" for label in labels]
            ttl = int(rng.choice(_TTL_CHOICES, p=_TTL_WEIGHTS))
            sites.append(PopularSite(zone=zone, hostnames=hostnames, ttl=ttl))
        return sites

    def _build_longtail_sites(self, rng: np.random.Generator) -> List[str]:
        sites: List[str] = []
        seen: Set[str] = set()
        while len(sites) < self.config.n_longtail_sites:
            word_a = _WORDS_A[int(rng.integers(0, len(_WORDS_A)))]
            word_b = _WORDS_B[int(rng.integers(0, len(_WORDS_B)))]
            tld = _LONGTAIL_TLDS[int(rng.integers(0, len(_LONGTAIL_TLDS)))]
            zone = f"{word_a}{word_b}{int(rng.integers(0, 100_000))}.{tld}"
            if zone in seen:
                continue
            seen.add(zone)
            sites.append(zone)
        return sites

    def _build_services(self, rng: np.random.Generator) -> List[DisposableService]:
        services = [
            DisposableService(
                "mcafee-gti", AvHashNameGenerator("avqs.mcafee.com"),
                ttl=300, base_weight=0.16, client_fraction=0.30,
                early_ttl=1),
            DisposableService(
                "esoft-telemetry",
                TelemetryNameGenerator("device.trans.manage.esoft.com"),
                ttl=60, base_weight=0.05, client_fraction=0.02),
            DisposableService(
                "google-ipv6-exp",
                MeasurementNameGenerator(self.GOOGLE_MEASUREMENT_ZONE),
                ttl=300, base_weight=0.18, client_fraction=0.20, growth=3.2,
                answer_count=3, early_ttl=1),
            DisposableService(
                "spamhaus-zen", DnsblNameGenerator("zen.spamhaus.org"),
                ttl=300, base_weight=0.08, client_fraction=0.05,
                early_ttl=1),
            DisposableService(
                "sophos-sxl",
                TrackingNameGenerator("samples.sophosxl.net", token_length=24),
                ttl=300, base_weight=0.06, client_fraction=0.12, answer_count=2,
                early_ttl=1),
            DisposableService(
                "omniture-2o7",
                TrackingNameGenerator("122.2o7.net", token_length=16),
                ttl=120, base_weight=0.08, client_fraction=0.50, answer_count=2),
            DisposableService(
                "facebook-fbcdn",
                TrackingNameGenerator("dns.xx.fbcdn.net", token_length=10),
                ttl=120, base_weight=0.06, client_fraction=0.45, growth=1.6,
                answer_count=3),
            DisposableService(
                "skype-probe",
                TrackingNameGenerator("ui.skype.com", token_length=14),
                ttl=60, base_weight=0.04, client_fraction=0.10, answer_count=2),
            DisposableService(
                "netflix-probe",
                TrackingNameGenerator("ichnaea.netflix.com", token_length=12),
                ttl=60, base_weight=0.03, client_fraction=0.15, answer_count=2),
            DisposableService(
                "msft-vortex",
                TrackingNameGenerator("vortex.data.microsoft.com",
                                      token_length=18),
                ttl=300, base_weight=0.05, client_fraction=0.40,
                answer_count=2),
        ]
        # A crowd of smaller tracking/AV zones so the labeled set has
        # hundreds of disposable zones, as in the paper.
        remaining = 1.0 - sum(s.base_weight for s in services)
        n_extra = self.config.n_extra_disposable
        for i in range(n_extra):
            kind = i % 3
            zone = f"t{i}.dsp{i % 7}-metrics.net"
            if kind == 0:
                generator: DisposableNameGenerator = TrackingNameGenerator(
                    zone, token_length=10 + (i % 8))
            elif kind == 1:
                generator = DnsblNameGenerator(f"bl{i}.dnsbl-{i % 5}.org")
            else:
                generator = AvHashNameGenerator(f"q{i}.avcheck-{i % 5}.com")
            services.append(DisposableService(
                name=f"extra-{i}", generator=generator,
                ttl=int((i % 4 + 1) * 60),
                base_weight=max(remaining, 0.1) / max(n_extra, 1),
                client_fraction=0.02 + 0.01 * (i % 5),
                growth=1.0 + 0.5 * (i % 3),
                answer_count=1 + (i % 3),
                early_ttl=1 if i % 3 == 0 else None))
        return services

    def _collect_registered_2lds(self) -> Set[str]:
        registered: Set[str] = {site.zone for site in self.popular_sites}
        registered.update(self.longtail_sites)
        registered.add(self.GOOGLE_ZONE)
        registered.update(self.AKAMAI_APEXES)
        for service in self.services:
            parts = service.zone.split(".")
            registered.add(".".join(parts[-2:]))
        return registered

    # -- authority -------------------------------------------------------

    def build_authority(self) -> AuthoritativeHierarchy:
        """Materialise every zone into an authoritative hierarchy."""
        authority = AuthoritativeHierarchy()
        for index, site in enumerate(self.popular_sites):
            zone = StaticZone(site.zone)
            zone.add_name(site.zone, RRType.A, site.ttl)
            for hostname in site.hostnames:
                zone.add_name(hostname, RRType.A, site.ttl)
                zone.add_name(hostname, RRType.AAAA, site.ttl)
            # A CNAME into the CDN, as popular sites offload assets.
            cdn_apex = self.AKAMAI_APEXES[index % len(self.AKAMAI_APEXES)]
            zone.add_name(f"cdnlink.{site.zone}", RRType.CNAME, site.ttl,
                          rdata=f"e{index}.g0.{cdn_apex}")
            authority.add_zone(zone)
        for longtail in self.longtail_sites:
            zone = StaticZone(longtail)
            zone.add_name(longtail, RRType.A, 3600)
            zone.add_name("www." + longtail, RRType.A, 3600)
            authority.add_zone(zone)
        google = StaticZone(self.GOOGLE_ZONE)
        for hostname in self.GOOGLE_HOSTS:
            google.add_name(hostname, RRType.A, 300)
            google.add_name(hostname, RRType.AAAA, 300)
        authority.add_zone(google)
        for cdn_apex in self.AKAMAI_APEXES:
            authority.add_zone(WildcardZone(cdn_apex, ttl=60))
        for service in self.services:
            authority.add_zone(WildcardZone(
                service.zone, ttl=service.ttl,
                rdata_mode=service.rdata_mode,
                answer_count=service.answer_count))
        return authority

    # -- ground truth ------------------------------------------------------

    def disposable_truth(self) -> Set[Tuple[str, int]]:
        """Ground-truth (zone, depth) pairs for every disposable service."""
        return {(service.zone, service.depth) for service in self.services}

    def labeled_zones(self, include_extras: bool = True) -> List[LabeledZone]:
        """Labeled zones for training, mirroring Section IV-B."""
        labels = [LabeledZone(zone=service.zone, disposable=True,
                              depth=service.depth)
                  for service in self.services
                  if include_extras or not service.name.startswith("extra-")]
        labels.extend(LabeledZone(zone=site.zone, disposable=False)
                      for site in self.popular_sites)
        return labels

    def disposable_zone_for(self, name: str) -> Optional[DisposableService]:
        """The service owning ``name``, if any."""
        for service in self.services:
            suffix = "." + service.zone
            if name.endswith(suffix):
                return service
        return None
