"""Zipf-like popularity sampling.

Web-site and CDN-object popularity follows a power law; the simulator
uses a finite Zipf distribution (p_i proportional to 1/i^s over ranks
1..n) for every "pick something popular" decision.  Sampling is done by
inverse-CDF search so batch draws are vectorised.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ZipfSampler"]


class ZipfSampler:
    """Finite Zipf distribution over ranks ``0..n-1``."""

    def __init__(self, n: int, exponent: float = 1.0) -> None:
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** -exponent
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` ranks (0-based)."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        u = rng.random(size)
        return np.searchsorted(self._cdf, u, side="left")

    def sample_one(self, rng: np.random.Generator) -> int:
        return int(self.sample(rng, 1)[0])

    def probability(self, rank: int) -> float:
        """P(rank) for a 0-based rank."""
        if not 0 <= rank < self.n:
            raise IndexError(f"rank {rank} out of range [0, {self.n})")
        lower = self._cdf[rank - 1] if rank > 0 else 0.0
        return float(self._cdf[rank] - lower)
