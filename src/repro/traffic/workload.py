"""Workload model: turns the zone population into daily query streams.

Each simulated day mixes the traffic classes the paper's fpDNS dataset
contains.  The *disposable share* of events grows linearly across the
simulated year (``disposable_share_start`` → ``..._end``), which is the
mechanism behind the Figure 13 growth curves; within the disposable
share, per-service weights follow each service's own growth factor
(Google's experiment grows fastest, reproducing Section V-C's Google
observations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.dns.message import Question, RRType
from repro.traffic.clients import ClientPopulation
from repro.traffic.diurnal import DiurnalProfile
from repro.traffic.population import PopulationConfig, ZonePopulation
from repro.traffic.zipf import ZipfSampler

__all__ = ["WorkloadConfig", "QueryEvent", "WorkloadModel"]


@dataclass(frozen=True)
class QueryEvent:
    """One client query: when, who, what."""

    timestamp: float  # seconds since day start
    client_id: int
    question: Question
    category: str


@dataclass
class WorkloadConfig:
    """Mixture and scale knobs for the daily query stream."""

    events_per_day: int = 60_000
    day_seconds: float = 7_200.0  # compressed day; see DiurnalProfile
    n_clients: int = 400
    # Event-share mixture (disposable takes its share from `popular`).
    popular_share: float = 0.60
    google_share: float = 0.06
    cdn_share: float = 0.04
    longtail_share: float = 0.15
    typo_share: float = 0.05
    disposable_share_start: float = 0.055
    disposable_share_end: float = 0.095
    aaaa_fraction: float = 0.10
    cname_fraction: float = 0.02
    site_popularity_exponent: float = 1.15
    longtail_popularity_exponent: float = 0.3
    seed: int = 42

    def __post_init__(self) -> None:
        fixed = (self.google_share + self.cdn_share + self.longtail_share
                 + self.typo_share)
        if fixed + self.disposable_share_end >= 1.0:
            raise ValueError("mixture shares exceed 1.0 at end of year")
        for name in ("popular_share", "google_share", "cdn_share",
                     "longtail_share", "typo_share",
                     "disposable_share_start", "disposable_share_end"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def disposable_share(self, year_fraction: float) -> float:
        """Linear growth of the disposable event share over the year."""
        year_fraction = min(max(year_fraction, 0.0), 1.0)
        return (self.disposable_share_start
                + (self.disposable_share_end - self.disposable_share_start)
                * year_fraction)


class WorkloadModel:
    """Generates daily query streams against a :class:`ZonePopulation`."""

    CATEGORIES = ("popular", "google", "cdn", "longtail", "typo", "disposable")

    def __init__(self, population: ZonePopulation,
                 config: Optional[WorkloadConfig] = None,
                 diurnal: Optional[DiurnalProfile] = None) -> None:
        self.population = population
        self.config = config or WorkloadConfig()
        self.diurnal = diurnal or DiurnalProfile()
        self.clients = ClientPopulation(self.config.n_clients,
                                        population.services,
                                        seed=self.config.seed + 1)
        self._site_sampler = ZipfSampler(
            len(population.popular_sites),
            self.config.site_popularity_exponent)
        self._longtail_sampler = ZipfSampler(
            len(population.longtail_sites),
            self.config.longtail_popularity_exponent)
        self._rng = np.random.default_rng(self.config.seed)

    # -- mixture -----------------------------------------------------------

    def category_probabilities(self, year_fraction: float) -> np.ndarray:
        """Event-share vector over CATEGORIES at ``year_fraction``."""
        cfg = self.config
        disposable = cfg.disposable_share(year_fraction)
        popular = max(cfg.popular_share - (disposable
                                           - cfg.disposable_share_start), 0.0)
        raw = np.array([popular, cfg.google_share, cfg.cdn_share,
                        cfg.longtail_share, cfg.typo_share, disposable])
        return raw / raw.sum()

    def service_probabilities(self, year_fraction: float) -> np.ndarray:
        weights = np.array([service.weight_at(year_fraction)
                            for service in self.population.services])
        return weights / weights.sum()

    # -- day generation -----------------------------------------------------

    def generate_day(self, day_index: int,
                     year_fraction: float = 0.0,
                     n_events: Optional[int] = None) -> List[QueryEvent]:
        """Generate one day's events, sorted by timestamp."""
        rng = np.random.default_rng(self.config.seed + 1000 + day_index)
        count = self.config.events_per_day if n_events is None else n_events
        timestamps = self.diurnal.sample_timestamps(
            rng, count, day_seconds=self.config.day_seconds)
        category_p = self.category_probabilities(year_fraction)
        category_ids = rng.choice(len(self.CATEGORIES), size=count,
                                  p=category_p)
        service_p = self.service_probabilities(year_fraction)
        events: List[QueryEvent] = []
        for ts, cat_id in zip(timestamps, category_ids):
            category = self.CATEGORIES[cat_id]
            client, question = self._make_event(rng, category, service_p)
            events.append(QueryEvent(timestamp=float(ts), client_id=client,
                                     question=question, category=category))
        return events

    # -- per-category event construction -----------------------------------

    def _make_event(self, rng: np.random.Generator, category: str,
                    service_p: np.ndarray) -> Tuple[int, Question]:
        if category == "popular":
            return self._popular_event(rng)
        if category == "google":
            return self._google_event(rng)
        if category == "cdn":
            return self._cdn_event(rng)
        if category == "longtail":
            return self._longtail_event(rng)
        if category == "typo":
            return self._typo_event(rng)
        return self._disposable_event(rng, service_p)

    def _qtype(self, rng: np.random.Generator) -> RRType:
        u = rng.random()
        if u < self.config.aaaa_fraction:
            return RRType.AAAA
        return RRType.A

    def _popular_event(self, rng: np.random.Generator) -> Tuple[int, Question]:
        site = self.population.popular_sites[self._site_sampler.sample_one(rng)]
        client = self.clients.sample_client(rng)
        if rng.random() < self.config.cname_fraction:
            return client, Question(f"cdnlink.{site.zone}", RRType.A)
        # Within a site, hostnames follow a mild popularity skew: the
        # first (www-like) hostname dominates.
        n_hosts = len(site.hostnames)
        host_rank = min(int(rng.geometric(0.45)) - 1, n_hosts - 1)
        hostname = site.hostnames[host_rank]
        return client, Question(hostname, self._qtype(rng))

    def _google_event(self, rng: np.random.Generator) -> Tuple[int, Question]:
        hosts = self.population.GOOGLE_HOSTS
        rank = min(int(rng.geometric(0.35)) - 1, len(hosts) - 1)
        client = self.clients.sample_client(rng)
        return client, Question(hosts[rank], self._qtype(rng))

    def _cdn_event(self, rng: np.random.Generator) -> Tuple[int, Question]:
        generators = self.population.cdn_generators
        generator = generators[int(rng.integers(0, len(generators)))]
        client = self.clients.sample_client(rng)
        return client, Question(generator.generate(rng), RRType.A)

    def _longtail_event(self, rng: np.random.Generator) -> Tuple[int, Question]:
        zone = self.population.longtail_sites[
            self._longtail_sampler.sample_one(rng)]
        name = zone if rng.random() < 0.4 else "www." + zone
        client = self.clients.sample_client(rng)
        return client, Question(name, RRType.A)

    def _typo_event(self, rng: np.random.Generator) -> Tuple[int, Question]:
        """A misspelled popular domain: resolves to NXDOMAIN."""
        registered = self.population.registered_2lds
        for _ in range(8):
            site = self.population.popular_sites[
                self._site_sampler.sample_one(rng)]
            zone = self._misspell(rng, site.zone)
            if zone not in registered:
                break
        name = zone if rng.random() < 0.5 else "www." + zone
        client = self.clients.sample_client(rng)
        return client, Question(name, RRType.A)

    @staticmethod
    def _misspell(rng: np.random.Generator, zone: str) -> str:
        label, _, tld = zone.partition(".")
        if len(label) < 2:
            return "x" + zone
        mode = int(rng.integers(0, 3))
        pos = int(rng.integers(0, len(label) - 1))
        if mode == 0:  # drop a character
            label = label[:pos] + label[pos + 1:]
        elif mode == 1:  # swap adjacent characters
            chars = list(label)
            chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
            label = "".join(chars)
        else:  # double a character
            label = label[:pos] + label[pos] + label[pos:]
        return f"{label}.{tld}"

    def _disposable_event(self, rng: np.random.Generator,
                          service_p: np.ndarray) -> Tuple[int, Question]:
        index = int(rng.choice(len(self.population.services), p=service_p))
        service = self.population.services[index]
        client = self.clients.sample_cohort_client(rng, service.name)
        return client, Question(service.generator.generate(rng), RRType.A)
