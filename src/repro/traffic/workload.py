"""Workload model: turns the zone population into daily query streams.

Each simulated day mixes the traffic classes the paper's fpDNS dataset
contains.  The *disposable share* of events grows linearly across the
simulated year (``disposable_share_start`` → ``..._end``), which is the
mechanism behind the Figure 13 growth curves; within the disposable
share, per-service weights follow each service's own growth factor
(Google's experiment grows fastest, reproducing Section V-C's Google
observations).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, NamedTuple, Optional, Tuple

import numpy as np

from repro.dns.message import Question, RRType
from repro.traffic.clients import ClientPopulation
from repro.traffic.diurnal import DiurnalProfile
from repro.traffic.population import PopulationConfig, ZonePopulation
from repro.traffic.zipf import ZipfSampler

__all__ = ["WorkloadConfig", "QueryEvent", "WorkloadModel"]


class QueryEvent(NamedTuple):
    """One client query: when, who, what.

    Tuple-backed: a MEDIUM day materialises 60k of these and the
    sharded engine regenerates the full stream in every worker, so
    construction cost is squarely on the hot path.
    """

    timestamp: float  # seconds since day start
    client_id: int
    question: Question
    category: str


@dataclass
class WorkloadConfig:
    """Mixture and scale knobs for the daily query stream."""

    events_per_day: int = 60_000
    day_seconds: float = 7_200.0  # compressed day; see DiurnalProfile
    n_clients: int = 400
    # Event-share mixture (disposable takes its share from `popular`).
    popular_share: float = 0.60
    google_share: float = 0.06
    cdn_share: float = 0.04
    longtail_share: float = 0.15
    typo_share: float = 0.05
    disposable_share_start: float = 0.055
    disposable_share_end: float = 0.095
    aaaa_fraction: float = 0.10
    cname_fraction: float = 0.02
    site_popularity_exponent: float = 1.15
    longtail_popularity_exponent: float = 0.3
    seed: int = 42

    def __post_init__(self) -> None:
        fixed = (self.google_share + self.cdn_share + self.longtail_share
                 + self.typo_share)
        if fixed + self.disposable_share_end >= 1.0:
            raise ValueError("mixture shares exceed 1.0 at end of year")
        for name in ("popular_share", "google_share", "cdn_share",
                     "longtail_share", "typo_share",
                     "disposable_share_start", "disposable_share_end"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    def disposable_share(self, year_fraction: float) -> float:
        """Linear growth of the disposable event share over the year."""
        year_fraction = min(max(year_fraction, 0.0), 1.0)
        return (self.disposable_share_start
                + (self.disposable_share_end - self.disposable_share_start)
                * year_fraction)


class WorkloadModel:
    """Generates daily query streams against a :class:`ZonePopulation`."""

    CATEGORIES = ("popular", "google", "cdn", "longtail", "typo", "disposable")

    def __init__(self, population: ZonePopulation,
                 config: Optional[WorkloadConfig] = None,
                 diurnal: Optional[DiurnalProfile] = None) -> None:
        self.population = population
        self.config = config or WorkloadConfig()
        self.diurnal = diurnal or DiurnalProfile()
        self.clients = ClientPopulation(self.config.n_clients,
                                        population.services,
                                        seed=self.config.seed + 1)
        self._site_sampler = ZipfSampler(
            len(population.popular_sites),
            self.config.site_popularity_exponent)
        self._longtail_sampler = ZipfSampler(
            len(population.longtail_sites),
            self.config.longtail_popularity_exponent)
        self._rng = np.random.default_rng(self.config.seed)

    # -- mixture -----------------------------------------------------------

    def category_probabilities(self, year_fraction: float) -> np.ndarray:
        """Event-share vector over CATEGORIES at ``year_fraction``."""
        cfg = self.config
        disposable = cfg.disposable_share(year_fraction)
        popular = max(cfg.popular_share - (disposable
                                           - cfg.disposable_share_start), 0.0)
        raw = np.array([popular, cfg.google_share, cfg.cdn_share,
                        cfg.longtail_share, cfg.typo_share, disposable])
        return raw / raw.sum()

    def service_probabilities(self, year_fraction: float) -> np.ndarray:
        weights = np.array([service.weight_at(year_fraction)
                            for service in self.population.services])
        return weights / weights.sum()

    # -- day generation -----------------------------------------------------

    def generate_day(self, day_index: int,
                     year_fraction: float = 0.0,
                     n_events: Optional[int] = None) -> List[QueryEvent]:
        """Generate one day's events, sorted by timestamp.

        Event construction is batched per category: one vectorised RNG
        draw per decision column (site rank, client, qtype, ...)
        instead of several scalar draws per event.  The RNG consumption
        order is fixed by the CATEGORIES tuple, so the stream stays a
        pure function of (config, day_index, year_fraction, n_events) —
        which is what lets the sharded workers of
        :mod:`repro.traffic.parallel` regenerate it independently.
        """
        rng = np.random.default_rng(self.config.seed + 1000 + day_index)
        count = self.config.events_per_day if n_events is None else n_events
        timestamps = self.diurnal.sample_timestamps(
            rng, count, day_seconds=self.config.day_seconds)
        category_p = self.category_probabilities(year_fraction)
        category_ids = rng.choice(len(self.CATEGORIES), size=count,
                                  p=category_p)
        service_p = self.service_probabilities(year_fraction)
        events: List[Optional[QueryEvent]] = [None] * count
        for cat_id, category in enumerate(self.CATEGORIES):
            indices = np.flatnonzero(category_ids == cat_id)
            if indices.size == 0:
                continue
            batch = self._BATCH_BUILDERS[category]
            batch(self, rng, indices, timestamps, service_p, events)
        return events  # type: ignore[return-value]

    # -- per-category batch builders ----------------------------------------
    #
    # Each builder fills ``out[i]`` for every ``i`` in ``indices``.  All
    # per-event randomness that can be drawn as a column is; only string
    # synthesis (generator names, misspellings) stays scalar.

    def _qtypes(self, rng: np.random.Generator,
                n: int) -> List[RRType]:
        u = rng.random(n)
        aaaa = self.config.aaaa_fraction
        return [RRType.AAAA if x < aaaa else RRType.A for x in u]

    def _popular_batch(self, rng: np.random.Generator, indices: np.ndarray,
                       timestamps: np.ndarray, service_p: np.ndarray,
                       out: List[Optional[QueryEvent]]) -> None:
        n = indices.size
        sites = self.population.popular_sites
        site_ranks = self._site_sampler.sample(rng, n)
        clients = self.clients.sample_clients(rng, n)
        cname_u = rng.random(n)
        # Within a site, hostnames follow a mild popularity skew: the
        # first (www-like) hostname dominates.
        host_ranks = rng.geometric(0.45, size=n) - 1
        qtypes = self._qtypes(rng, n)
        cname_fraction = self.config.cname_fraction
        for k in range(n):
            i = int(indices[k])
            site = sites[int(site_ranks[k])]
            if cname_u[k] < cname_fraction:
                question = Question(f"cdnlink.{site.zone}", RRType.A)
            else:
                hostnames = site.hostnames
                rank = int(host_ranks[k])
                if rank >= len(hostnames):
                    rank = len(hostnames) - 1
                question = Question(hostnames[rank], qtypes[k])
            out[i] = QueryEvent(float(timestamps[i]), int(clients[k]),
                                question, "popular")

    def _google_batch(self, rng: np.random.Generator, indices: np.ndarray,
                      timestamps: np.ndarray, service_p: np.ndarray,
                      out: List[Optional[QueryEvent]]) -> None:
        n = indices.size
        hosts = self.population.GOOGLE_HOSTS
        ranks = np.minimum(rng.geometric(0.35, size=n) - 1, len(hosts) - 1)
        clients = self.clients.sample_clients(rng, n)
        qtypes = self._qtypes(rng, n)
        for k in range(n):
            i = int(indices[k])
            out[i] = QueryEvent(float(timestamps[i]), int(clients[k]),
                                Question(hosts[int(ranks[k])], qtypes[k]),
                                "google")

    def _cdn_batch(self, rng: np.random.Generator, indices: np.ndarray,
                   timestamps: np.ndarray, service_p: np.ndarray,
                   out: List[Optional[QueryEvent]]) -> None:
        n = indices.size
        generators = self.population.cdn_generators
        generator_ids = rng.integers(0, len(generators), size=n)
        clients = self.clients.sample_clients(rng, n)
        for k in range(n):
            i = int(indices[k])
            generator = generators[int(generator_ids[k])]
            out[i] = QueryEvent(float(timestamps[i]), int(clients[k]),
                                Question(generator.generate(rng), RRType.A),
                                "cdn")

    def _longtail_batch(self, rng: np.random.Generator, indices: np.ndarray,
                        timestamps: np.ndarray, service_p: np.ndarray,
                        out: List[Optional[QueryEvent]]) -> None:
        n = indices.size
        zones = self.population.longtail_sites
        zone_ranks = self._longtail_sampler.sample(rng, n)
        bare_u = rng.random(n)
        clients = self.clients.sample_clients(rng, n)
        for k in range(n):
            i = int(indices[k])
            zone = zones[int(zone_ranks[k])]
            name = zone if bare_u[k] < 0.4 else "www." + zone
            out[i] = QueryEvent(float(timestamps[i]), int(clients[k]),
                                Question(name, RRType.A), "longtail")

    def _typo_batch(self, rng: np.random.Generator, indices: np.ndarray,
                    timestamps: np.ndarray, service_p: np.ndarray,
                    out: List[Optional[QueryEvent]]) -> None:
        """Misspelled popular domains: resolve to NXDOMAIN."""
        n = indices.size
        registered = self.population.registered_2lds
        sites = self.population.popular_sites
        bare_u = rng.random(n)
        clients = self.clients.sample_clients(rng, n)
        for k in range(n):
            i = int(indices[k])
            for _ in range(8):
                site = sites[self._site_sampler.sample_one(rng)]
                zone = self._misspell(rng, site.zone)
                if zone not in registered:
                    break
            name = zone if bare_u[k] < 0.5 else "www." + zone
            out[i] = QueryEvent(float(timestamps[i]), int(clients[k]),
                                Question(name, RRType.A), "typo")

    def _disposable_batch(self, rng: np.random.Generator, indices: np.ndarray,
                          timestamps: np.ndarray, service_p: np.ndarray,
                          out: List[Optional[QueryEvent]]) -> None:
        n = indices.size
        services = self.population.services
        service_ids = rng.choice(len(services), size=n, p=service_p)
        for k in range(n):
            i = int(indices[k])
            service = services[int(service_ids[k])]
            client = self.clients.sample_cohort_client(rng, service.name)
            out[i] = QueryEvent(float(timestamps[i]), client,
                                Question(service.generator.generate(rng),
                                         RRType.A),
                                "disposable")

    #: Category -> batch builder, in CATEGORIES order (fixes the RNG
    #: consumption order and therefore the generated stream).
    _BATCH_BUILDERS = {
        "popular": _popular_batch,
        "google": _google_batch,
        "cdn": _cdn_batch,
        "longtail": _longtail_batch,
        "typo": _typo_batch,
        "disposable": _disposable_batch,
    }

    @staticmethod
    def _misspell(rng: np.random.Generator, zone: str) -> str:
        label, _, tld = zone.partition(".")
        if len(label) < 2:
            return "x" + zone
        mode = int(rng.integers(0, 3))
        pos = int(rng.integers(0, len(label) - 1))
        if mode == 0:  # drop a character
            label = label[:pos] + label[pos + 1:]
        elif mode == 1:  # swap adjacent characters
            chars = list(label)
            chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
            label = "".join(chars)
        else:  # double a character
            label = label[:pos] + label[pos] + label[pos:]
        return f"{label}.{tld}"
