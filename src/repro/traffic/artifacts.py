"""On-disk fpDNS artifact cache.

Simulating the calendar is the expensive part of every experiment
session; the resulting fpDNS days are pure functions of the simulator
config and the chronological day sequence.  This module caches each
completed day on disk keyed by a content hash of exactly those inputs,
so a warm second session loads the year instead of re-simulating it.

Two storage backends share one key scheme and one
:class:`~repro.core.artifact_store.ArtifactStore` (atomic per-process
temp-file publish, corrupt-blob-is-a-miss, size accounting, LRU
prune):

* ``columnar`` (default) — the fpDNS-v2 binary columnar format of
  :mod:`repro.pdns.columnar`: a warm load hands back numpy columns and
  a pre-built :class:`~repro.core.interning.DayDigest`, with the
  legacy entry lists materialised lazily only if a per-entry consumer
  asks.  This is the digest-native warm path.
* ``tsv`` — the legacy gzip-TSV format of :mod:`repro.pdns.io`, kept
  as the interchange/fallback format behind
  ``REPRO_ARTIFACT_FORMAT=tsv`` and as the equality oracle in the
  tests and IO benchmark.

Both backends persist identical day semantics, so they share key
material (:data:`ARTIFACT_FORMAT`) and differ only in file suffix; a
cache directory may hold both side by side.

Key derivation
--------------
:func:`artifact_key` hashes (via the shared
:func:`repro.core.keys.versioned_key` scheme) the canonical JSON of

* a format-version tag (bump to invalidate the whole cache on layout
  or semantics changes),
* the full :class:`~repro.traffic.simulate.SimulatorConfig` (including
  the nested population and workload configs — any knob change, e.g. a
  different seed or cache capacity, yields different traffic and must
  miss),
* the *chronological day history up to and including the keyed day* —
  resolver caches persist across days, so the same calendar day
  simulated after a different prefix is a different artifact,
* the per-day event-count override, if any.

Corrupt or truncated cache files are treated as misses, never errors.
"""

from __future__ import annotations

import os
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.core.artifact_store import ArtifactStore
from repro.core.interning import DayDigest
from repro.core.keys import versioned_key
from repro.pdns.columnar import dumps_fpdns2, loads_fpdns2
from repro.pdns.io import FormatError, dumps_fpdns, loads_fpdns
from repro.pdns.records import FpDnsDataset
from repro.traffic.simulate import MeasurementDate, SimulatorConfig

__all__ = ["ARTIFACT_FORMAT", "ARTIFACT_FORMATS", "COLUMNAR_SUFFIX",
           "TSV_SUFFIX", "artifact_key", "artifact_format_from_env",
           "FpDnsArtifactCache"]

#: Version tag baked into every key; bump on any change to the keyed
#: semantics that old artifacts would misstate.  Both storage backends
#: persist identical days, so they share this tag (the file suffix
#: separates their blobs).
ARTIFACT_FORMAT = "repro-fpdns-cache-v1"

#: Supported storage backends, default first.
ARTIFACT_FORMATS = ("columnar", "tsv")

COLUMNAR_SUFFIX = ".fpdns2"
TSV_SUFFIX = ".fpdns.gz"

PathLike = Union[str, Path]


def artifact_format_from_env() -> str:
    """The backend selected by ``REPRO_ARTIFACT_FORMAT`` (default
    ``columnar``).  The choice changes bytes on disk and wall-clock
    time, never a loaded day's content."""
    value = os.environ.get("REPRO_ARTIFACT_FORMAT", ARTIFACT_FORMATS[0])
    value = value.strip().lower()
    if value not in ARTIFACT_FORMATS:
        raise ValueError(
            f"REPRO_ARTIFACT_FORMAT={value!r} not in {ARTIFACT_FORMATS}")
    return value


def artifact_key(config: SimulatorConfig,
                 history: Sequence[MeasurementDate],
                 n_events: Optional[int] = None) -> str:
    """Content hash identifying one simulated day.

    ``history`` is the chronological sequence of simulated days ending
    with the day being keyed.
    """
    if not history:
        raise ValueError("history must end with the day being keyed")
    return versioned_key(ARTIFACT_FORMAT, {
        "config": asdict(config),
        "history": [(date.label, date.day_index, date.year_fraction)
                    for date in history],
        "n_events": n_events,
    })


class FpDnsArtifactCache:
    """Directory of cached fpDNS days, one blob per key.

    Counts ``hits`` and ``misses`` so callers (and the cache tests) can
    verify that a warm session skipped simulation.
    """

    def __init__(self, root: PathLike,
                 artifact_format: Optional[str] = None) -> None:
        self.format = artifact_format or artifact_format_from_env()
        if self.format not in ARTIFACT_FORMATS:
            raise ValueError(f"unknown artifact format {self.format!r}")
        suffix = (COLUMNAR_SUFFIX if self.format == "columnar"
                  else TSV_SUFFIX)
        self.store_backend = ArtifactStore(root, suffix)

    @property
    def root(self) -> Path:
        return self.store_backend.root

    @property
    def hits(self) -> int:
        return self.store_backend.hits

    @property
    def misses(self) -> int:
        return self.store_backend.misses

    def path_for(self, key: str) -> Path:
        return self.store_backend.path_for(key)

    def _decode(self, data: bytes) -> FpDnsDataset:
        if self.format == "columnar":
            return loads_fpdns2(data)
        return loads_fpdns(data)

    def load(self, key: str) -> Optional[FpDnsDataset]:
        """Cached day for ``key``, or ``None`` (counted as a miss).

        With the columnar backend the returned dataset carries its
        pre-built digest (``day_digest()``) and precomputed
        ``content_key``; per-entry views materialise lazily.
        """
        return self.store_backend.load(key, self._decode,
                                       miss_on=(FormatError,))

    def store(self, key: str, dataset: FpDnsDataset,
              digest: Optional[DayDigest] = None) -> Path:
        """Persist ``dataset`` under ``key``; returns the file path.

        ``digest`` lets callers that already built the day's digest
        (the experiment context) avoid a redundant single-pass build
        when encoding columnar blobs; the TSV backend ignores it.
        """
        if self.format == "columnar":
            data = dumps_fpdns2(dataset, digest)
        else:
            data = dumps_fpdns(dataset)
        return self.store_backend.store_bytes(key, data)

    def __len__(self) -> int:
        return len(self.store_backend)
