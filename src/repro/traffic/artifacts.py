"""On-disk fpDNS artifact cache.

Simulating the calendar is the expensive part of every experiment
session; the resulting fpDNS days are pure functions of the simulator
config and the chronological day sequence.  This module caches each
completed day on disk (the gzip-TSV format of :mod:`repro.pdns.io`)
keyed by a content hash of exactly those inputs, so a warm second
session loads the year instead of re-simulating it.

Key derivation
--------------
:func:`artifact_key` hashes the canonical JSON of

* a format-version tag (bump to invalidate the whole cache on layout
  or semantics changes),
* the full :class:`~repro.traffic.simulate.SimulatorConfig` (including
  the nested population and workload configs — any knob change, e.g. a
  different seed or cache capacity, yields different traffic and must
  miss),
* the *chronological day history up to and including the keyed day* —
  resolver caches persist across days, so the same calendar day
  simulated after a different prefix is a different artifact,
* the per-day event-count override, if any.

Corrupt or truncated cache files are treated as misses, never errors.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Optional, Sequence, Union

from repro.pdns.io import FormatError, load_fpdns, save_fpdns
from repro.pdns.records import FpDnsDataset
from repro.traffic.simulate import MeasurementDate, SimulatorConfig

__all__ = ["ARTIFACT_FORMAT", "artifact_key", "FpDnsArtifactCache"]

#: Version tag baked into every key; bump on any change to the on-disk
#: layout or to simulation semantics that old artifacts would misstate.
ARTIFACT_FORMAT = "repro-fpdns-cache-v1"

PathLike = Union[str, Path]


def artifact_key(config: SimulatorConfig,
                 history: Sequence[MeasurementDate],
                 n_events: Optional[int] = None) -> str:
    """Content hash identifying one simulated day.

    ``history`` is the chronological sequence of simulated days ending
    with the day being keyed.
    """
    if not history:
        raise ValueError("history must end with the day being keyed")
    payload = {
        "format": ARTIFACT_FORMAT,
        "config": asdict(config),
        "history": [(date.label, date.day_index, date.year_fraction)
                    for date in history],
        "n_events": n_events,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class FpDnsArtifactCache:
    """Directory of cached fpDNS days, one gzip-TSV file per key.

    Counts ``hits`` and ``misses`` so callers (and the cache tests) can
    verify that a warm session skipped simulation.
    """

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.fpdns.gz"

    def load(self, key: str) -> Optional[FpDnsDataset]:
        """Cached day for ``key``, or ``None`` (counted as a miss)."""
        path = self.path_for(key)
        if not path.exists():
            self.misses += 1
            return None
        try:
            dataset = load_fpdns(path)
        except (OSError, EOFError, FormatError):
            # Truncated/corrupt artifact: drop it and re-simulate.
            self.misses += 1
            return None
        self.hits += 1
        return dataset

    def store(self, key: str, dataset: FpDnsDataset) -> Path:
        """Persist ``dataset`` under ``key``; returns the file path."""
        path = self.path_for(key)
        tmp = path.with_suffix(".tmp")
        save_fpdns(dataset, tmp)
        tmp.replace(path)  # atomic publish: readers never see partials
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.fpdns.gz"))
