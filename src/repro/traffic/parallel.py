"""Sharded-parallel trace simulation.

The monitored cluster of Section III-A is a set of *independent*
recursive caches with clients pinned to servers by hash
(:meth:`repro.dns.resolver.RdnsCluster.server_for`).  Because no state
is shared between servers, the simulated query stream can be
partitioned by pinned server and each partition simulated in its own
process — the same observation that makes DNS measurement at scale a
parallel-workers problem (ZDNS).

Determinism contract
--------------------
The parallel result is **byte-identical** to a serial
:class:`~repro.traffic.simulate.TraceSimulator` run over the same
config and dates:

* every worker regenerates the *full* day's event stream from the
  workload seed (generation is a pure function of the config and day),
  then simulates only the events pinned to its shard's servers;
* each fpDNS entry group is tagged with the index of the generating
  query event, and the per-shard streams are k-way merged on
  ``(timestamp, event index)``.  Event streams are timestamp-sorted at
  generation, so this restores exactly the serial interleaving — note
  that ``(timestamp, client_id, qname)`` alone is *not* a total order
  over entries (every member of a CNAME chain shares the timestamp and
  client of its query), which is why the generation-order index is the
  tie-break;
* per-server cache statistics ride back with the shard results, so
  :meth:`ShardedTraceSimulator.total_stats` equals the serial
  cluster's :meth:`~repro.dns.resolver.RdnsCluster.total_stats`.

Worker entry points are top-level picklable functions (reprolint R007):
no lambdas or closures are handed to the pool.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
from dataclasses import dataclass
from operator import itemgetter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.labeling import LabeledZone
from repro.dns.cache import CacheStats, LruDnsCache
from repro.dns.resolver import RecursiveResolver
from repro.pdns.collector import entries_for_response
from repro.pdns.records import FpDnsDataset, FpDnsEntry
from repro.traffic.diurnal import SECONDS_PER_DAY
from repro.traffic.population import ZonePopulation
from repro.traffic.simulate import (MeasurementDate, SimulatorConfig,
                                    apply_ttl_schedule)
from repro.traffic.workload import WorkloadModel

__all__ = ["ShardedTraceSimulator", "default_worker_count"]

#: One tagged fpDNS stream: (timestamp, generating-event index, entries).
_TaggedGroup = Tuple[float, int, List[FpDnsEntry]]


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to simulate its servers' year."""

    config: SimulatorConfig
    server_indices: Tuple[int, ...]
    dates: Tuple[MeasurementDate, ...]
    n_events: Optional[int]


@dataclass(frozen=True)
class _ServerStats:
    """Per-server counters shipped back from a worker."""

    cache: CacheStats
    upstream_queries: int
    answered_queries: int


@dataclass
class _ShardDay:
    """One shard's contribution to one simulated day."""

    below: List[_TaggedGroup]
    above: List[_TaggedGroup]


@dataclass
class _ShardResult:
    """A worker's full output: per-day streams plus final stats."""

    days: List[_ShardDay]
    stats: Dict[int, _ServerStats]


def _simulate_shard(task: _ShardTask) -> _ShardResult:
    """Worker entry point: simulate ``task.dates`` for a server subset.

    Top-level (picklable) by design — handed to ``Pool.map``.  Builds a
    private population/authority/workload (deterministic from the
    config seeds, so identical across workers) and one resolver per
    assigned server, then replays each day's full event stream,
    executing only the events whose pinned server belongs to the shard.
    """
    config = task.config
    population = ZonePopulation(config.population)
    workload = WorkloadModel(population, config.workload)
    authority = population.build_authority()
    servers: Dict[int, RecursiveResolver] = {
        index: RecursiveResolver(
            authority,
            LruDnsCache(config.cache_capacity, min_ttl=config.min_ttl,
                        negative_ttl=config.negative_ttl))
        for index in task.server_indices
    }
    n_servers = config.n_servers
    days: List[_ShardDay] = []
    for date in task.dates:
        apply_ttl_schedule(population, authority, date.year_fraction)
        events = workload.generate_day(
            date.day_index, year_fraction=date.year_fraction,
            n_events=task.n_events)
        day_start = date.day_index * SECONDS_PER_DAY
        below: List[_TaggedGroup] = []
        above: List[_TaggedGroup] = []
        for seq, event in enumerate(events):
            server = servers.get(event.client_id % n_servers)
            if server is None:
                continue
            now = day_start + event.timestamp
            result = server.resolve(event.question, now)
            # Mirror RdnsCluster.query + PassiveDnsCollector exactly:
            # the above-tap fires first on a miss, then the below-tap.
            if not result.cache_hit:
                above.append((now, seq,
                              entries_for_response(now, None,
                                                   result.response)))
            below.append((now, seq,
                          entries_for_response(now, event.client_id,
                                               result.response)))
        days.append(_ShardDay(below=below, above=above))
    stats = {
        index: _ServerStats(cache=server.cache.stats,
                            upstream_queries=server.upstream_queries,
                            answered_queries=server.answered_queries)
        for index, server in servers.items()
    }
    return _ShardResult(days=days, stats=stats)


def _merge_streams(streams: Sequence[List[_TaggedGroup]]) -> List[FpDnsEntry]:
    """K-way merge tagged shard streams back into serial order.

    Each shard's stream is already sorted by ``(timestamp, seq)`` and
    event indices are disjoint across shards, so the merge is a total
    deterministic order; within a group (one response), entry order is
    preserved as produced.
    """
    merged: List[FpDnsEntry] = []
    for _ts, _seq, entries in heapq.merge(*streams, key=itemgetter(0, 1)):
        merged.extend(entries)
    return merged


def default_worker_count(n_servers: int) -> int:
    """Workers to use when unspecified: one per core, capped by shards."""
    return max(1, min(n_servers, os.cpu_count() or 1))


class ShardedTraceSimulator:
    """Parallel drop-in for :class:`~repro.traffic.simulate.TraceSimulator`
    over a contiguous run of days.

    One :meth:`run_days` call simulates one contiguous window from cold
    caches — exactly what a freshly constructed serial simulator would
    produce for the same dates.  Server ``i`` is assigned to worker
    ``i % n_workers``, so any worker count from 1 to ``n_servers``
    yields the identical merged output.
    """

    def __init__(self, config: Optional[SimulatorConfig] = None,
                 n_workers: Optional[int] = None) -> None:
        self.config = config or SimulatorConfig()
        if n_workers is None:
            n_workers = default_worker_count(self.config.n_servers)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.n_workers = min(n_workers, self.config.n_servers)
        self._population: Optional[ZonePopulation] = None
        self._stats: Optional[Dict[int, _ServerStats]] = None

    # -- shard planning -----------------------------------------------------

    def _tasks(self, dates: Sequence[MeasurementDate],
               n_events: Optional[int]) -> List[_ShardTask]:
        shards: List[List[int]] = [[] for _ in range(self.n_workers)]
        for index in range(self.config.n_servers):
            shards[index % self.n_workers].append(index)
        return [
            _ShardTask(config=self.config, server_indices=tuple(shard),
                       dates=tuple(dates), n_events=n_events)
            for shard in shards if shard
        ]

    # -- running ------------------------------------------------------------

    def run_days(self, dates: Sequence[MeasurementDate],
                 n_events: Optional[int] = None) -> List[FpDnsDataset]:
        """Simulate ``dates`` (chronological) and return one dataset each."""
        tasks = self._tasks(dates, n_events)
        if len(tasks) == 1:
            # Single shard: same code path, no process overhead.
            results = [_simulate_shard(tasks[0])]
        else:
            context = multiprocessing.get_context()
            with context.Pool(processes=len(tasks)) as pool:
                results = pool.map(_simulate_shard, tasks)
        stats: Dict[int, _ServerStats] = {}
        for result in results:
            stats.update(result.stats)
        self._stats = stats
        datasets: List[FpDnsDataset] = []
        for day_index, date in enumerate(dates):
            shard_days = [result.days[day_index] for result in results]
            datasets.append(FpDnsDataset(
                day=date.label,
                below=_merge_streams([day.below for day in shard_days]),
                above=_merge_streams([day.above for day in shard_days])))
        return datasets

    def total_stats(self) -> dict:
        """Aggregate cache statistics, matching
        :meth:`repro.dns.resolver.RdnsCluster.total_stats` for the same
        simulated window."""
        if self._stats is None:
            raise RuntimeError("total_stats() requires a prior run_days()")
        totals = {"hits": 0, "misses": 0, "evictions": 0, "evicted_live": 0,
                  "inserts": 0, "upstream_queries": 0, "answered_queries": 0}
        for server_stats in self._stats.values():
            cache = server_stats.cache
            totals["hits"] += cache.hits
            totals["misses"] += cache.misses
            totals["evictions"] += cache.evictions
            totals["evicted_live"] += cache.evicted_live
            totals["inserts"] += cache.inserts
            totals["upstream_queries"] += server_stats.upstream_queries
            totals["answered_queries"] += server_stats.answered_queries
        return totals

    # -- ground truth -------------------------------------------------------

    @property
    def population(self) -> ZonePopulation:
        """The zone population (built lazily; identical to the workers')."""
        if self._population is None:
            self._population = ZonePopulation(self.config.population)
        return self._population

    def disposable_truth(self) -> set:
        return self.population.disposable_truth()

    def labeled_zones(self) -> List[LabeledZone]:
        return self.population.labeled_zones()
