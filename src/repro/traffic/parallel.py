"""Sharded-parallel trace simulation with zero-copy column IPC.

The monitored cluster of Section III-A is a set of *independent*
recursive caches with clients pinned to servers by hash
(:meth:`repro.dns.resolver.RdnsCluster.server_for`).  Because no state
is shared between servers, the simulated query stream can be
partitioned by pinned server and each partition simulated in its own
process — the same observation that makes DNS measurement at scale a
parallel-workers problem (ZDNS).

The first version of this module shipped each shard's results back as
pickled :class:`~repro.pdns.records.FpDnsEntry` lists and lost badly
to serial (0.18x at 4 workers — the ROADMAP's measured failure mode,
reprolint R014).  Workers are now **digest-native end to end**: each
shard builds per-day *column arrays* (timestamps, event-sequence tags,
shard-locally interned name ids, RR/rdata tables — the fpDNS-v2
vocabulary of :mod:`repro.core.interning`) and ships them through a
:class:`repro.core.ipc.ColumnChannel` — one shared-memory segment per
shard by default, or spilled blobs through an
:class:`~repro.core.artifact_store.ArtifactStore` where POSIX shared
memory is unavailable.  The parent performs the deterministic
``(timestamp, seq)`` k-way merge **at the column level**
(:func:`repro.core.interning.merge_shard_columns`) and materialises a
:class:`~repro.pdns.columnar.ColumnarFpDnsDataset` directly, so the
coordinator never constructs a per-entry object.

Determinism contract
--------------------
The parallel result is **byte-identical** to a serial
:class:`~repro.traffic.simulate.TraceSimulator` run over the same
config and dates:

* every worker regenerates the *full* day's event stream from the
  workload seed (generation is a pure function of the config and day),
  then simulates only the events pinned to its shard's servers;
* each fpDNS row is tagged with the index of the generating query
  event, and the per-shard column streams are stably merged on
  ``(timestamp, event index)``.  Event streams are timestamp-sorted at
  generation, so this restores exactly the serial interleaving — note
  that ``(timestamp, client_id, qname)`` alone is *not* a total order
  over rows (every member of a CNAME chain shares the timestamp and
  client of its query), which is why the generation-order index is the
  tie-break and why the merge sort must be stable (rows of one
  response keep their answer-section order);
* name and RR ids are renumbered to first-appearance order over the
  merged streams, so the merged digest equals
  ``build_day_digest(serial_day)`` column for column;
* per-server cache statistics ride back with the shard results, so
  :meth:`ShardedTraceSimulator.total_stats` equals the serial
  cluster's :meth:`~repro.dns.resolver.RdnsCluster.total_stats`.

Worker entry points are top-level picklable functions (reprolint R007)
and the dispatched tasks carry configs and column refs, never entry
lists (R014).  Shared-memory segment names are chosen by the *parent*
so its ``finally`` block can release every segment even when a worker
dies mid-task; workers release their own segments on the exception
path (``tests/traffic/test_parallel.py`` pins the no-leak contract).
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ipc import (IPC_AUTO, IPC_MODES, IPC_SHM, ColumnChannel,
                            ColumnsRef, IpcStats, resolve_ipc_mode)
from repro.core.labeling import LabeledZone
from repro.core.interning import (RRTYPE_CODES, SHARD_STREAM_FIELDS,
                                  encode_string_pool, merge_shard_columns)
from repro.core.parallelism import available_cpu_count
from repro.dns.cache import CacheStats, LruDnsCache
from repro.dns.message import RCode, Response
from repro.dns.resolver import RecursiveResolver
from repro.pdns.columnar import ColumnarFpDnsDataset
from repro.pdns.records import FpDnsDataset
from repro.traffic.diurnal import SECONDS_PER_DAY
from repro.traffic.population import ZonePopulation
from repro.traffic.simulate import (MeasurementDate, SimulatorConfig,
                                    apply_ttl_schedule)
from repro.traffic.workload import WorkloadModel

__all__ = ["ShardedTraceSimulator", "ShardColumnsBuilder", "IpcStats",
           "default_worker_count"]

_NOERROR = RCode.NOERROR
_NXDOMAIN = RCode.NXDOMAIN

#: Field order of one shard row while being collected (transposed into
#: the :data:`~repro.core.interning.SHARD_STREAM_FIELDS` arrays at day
#: end).
_ROW_DTYPES: Tuple[Tuple[str, type], ...] = (
    ("timestamps", np.float64), ("seqs", np.int64),
    ("name_ids", np.int32), ("rr_ids", np.int32),
    ("client_ids", np.int64), ("rcodes", np.int16),
    ("qtypes", np.int16), ("ttls", np.int64), ("xrdata_ids", np.int32))


class ShardColumnsBuilder:
    """Collects one shard's contribution to one day as columns.

    Mirrors :func:`repro.pdns.collector.entries_for_response` row for
    row — one row per answer RR under its own owner name, one row per
    failure — but appends scalars into column buffers instead of
    constructing :class:`~repro.pdns.records.FpDnsEntry` objects.
    Names, answer rdata and RR triples are interned shard-locally
    (dense ids in first-appearance order over this shard's rows); the
    column merge renumbers them to the serial global order.
    """

    def __init__(self) -> None:
        self._name_ids: Dict[str, int] = {}
        self._names: List[str] = []
        self._rdata_ids: Dict[str, int] = {}
        self._rdatas: List[str] = []
        self._rr_ids: Dict[Tuple[int, int, int], int] = {}
        self._rr_rows: List[Tuple[int, int, int]] = []
        self._rows: Dict[str, List[Tuple[float, int, int, int, int, int,
                                         int, int, int]]] = {
            "below": [], "above": []}

    def _intern_name(self, name: str) -> int:
        nid = self._name_ids.get(name)
        if nid is None:
            nid = len(self._names)
            self._name_ids[name] = nid
            self._names.append(name)
        return nid

    def add_response(self, stream: str, now: float, seq: int,
                     client_id: Optional[int],
                     response: Response) -> None:
        """Record the fpDNS rows one observed response contributes."""
        rows = self._rows[stream]
        cid = -1 if client_id is None else client_id
        if response.rcode is _NXDOMAIN or not response.answers:
            rcode = (response.rcode if response.rcode is not _NOERROR
                     else _NXDOMAIN)
            question = response.question
            rows.append((now, seq, self._intern_name(question.qname),
                         -1, cid, rcode.value,
                         RRTYPE_CODES[question.qtype], -1, -1))
            return
        noerror = _NOERROR.value
        for rr in response.answers:
            nid = self._intern_name(rr.name)
            qtype_code = RRTYPE_CODES[rr.rtype]
            rdid = self._rdata_ids.get(rr.rdata)
            if rdid is None:
                rdid = len(self._rdatas)
                self._rdata_ids[rr.rdata] = rdid
                self._rdatas.append(rr.rdata)
            rr_key = (nid, qtype_code, rdid)
            rid = self._rr_ids.get(rr_key)
            if rid is None:
                rid = len(self._rr_rows)
                self._rr_ids[rr_key] = rid
                self._rr_rows.append(rr_key)
            rows.append((now, seq, nid, rid, cid, noerror, qtype_code,
                         -1 if rr.ttl is None else rr.ttl, -1))

    def finalize(self) -> Dict[str, np.ndarray]:
        """This shard-day as the column dict the merge consumes."""
        columns: Dict[str, np.ndarray] = {}
        names_blob, names_offsets = encode_string_pool(self._names)
        columns["names_blob"] = names_blob
        columns["names_offsets"] = names_offsets
        rdata_blob, rdata_offsets = encode_string_pool(self._rdatas)
        columns["rdata_blob"] = rdata_blob
        columns["rdata_offsets"] = rdata_offsets
        # Failure rows never carry rdata in the simulated streams
        # (entries_for_response drops it), so the extra-rdata pool is
        # structurally empty — kept in the layout for format parity
        # with fpDNS-v2.
        xrdata_blob, xrdata_offsets = encode_string_pool([])
        columns["xrdata_blob"] = xrdata_blob
        columns["xrdata_offsets"] = xrdata_offsets
        columns["rr_name_ids"] = np.array(
            [row[0] for row in self._rr_rows], dtype=np.int64)
        columns["rr_qtypes"] = np.array(
            [row[1] for row in self._rr_rows], dtype=np.int16)
        columns["rr_rdata_ids"] = np.array(
            [row[2] for row in self._rr_rows], dtype=np.int32)
        for prefix in ("below", "above"):
            rows = self._rows[prefix]
            if rows:
                transposed = list(zip(*rows))
            else:
                transposed = [() for _ in _ROW_DTYPES]
            for (field, dtype), values in zip(_ROW_DTYPES, transposed):
                columns[f"{prefix}_{field}"] = np.array(values,
                                                        dtype=dtype)
        return columns


@dataclass(frozen=True)
class _ShardTask:
    """Everything one worker needs to simulate its servers' window."""

    config: SimulatorConfig
    server_indices: Tuple[int, ...]
    dates: Tuple[MeasurementDate, ...]
    n_events: Optional[int]
    #: Resolved IPC transport (``shm``/``spill``) or ``inline`` for the
    #: single-shard in-process path (no pool, no serialisation).
    transport: str
    #: Parent-chosen shared-memory segment name — the parent must be
    #: able to release the segment even if this worker dies after
    #: publishing.
    shm_name: Optional[str] = None
    spill_root: Optional[str] = None


@dataclass(frozen=True)
class _ServerStats:
    """Per-server counters shipped back from a worker."""

    cache: CacheStats
    upstream_queries: int
    answered_queries: int


@dataclass
class _ShardResult:
    """A worker's full output: a column payload ref plus final stats.

    Exactly one of ``columns_ref`` (pool path) and ``inline_days``
    (single-shard in-process path) is set.  The published columns hold
    one :class:`ShardColumnsBuilder` payload per date, key-prefixed
    ``d<index>:``.
    """

    columns_ref: Optional[ColumnsRef]
    inline_days: Optional[List[Dict[str, np.ndarray]]]
    stats: Dict[int, _ServerStats]


def _day_prefix(day_index: int) -> str:
    return f"d{day_index}:"


def _simulate_shard(task: _ShardTask) -> _ShardResult:
    """Worker entry point: simulate ``task.dates`` for a server subset.

    Top-level (picklable) by design — handed to ``Pool.map``.  Builds a
    private population/authority/workload (deterministic from the
    config seeds, so identical across workers) and one resolver per
    assigned server, then replays each day's full event stream,
    executing only the events whose pinned server belongs to the shard
    and collecting columns instead of entries.  On the pool path the
    day columns are published through the column channel and only a
    small ref is pickled back; if anything fails after publication the
    segment is released here before the exception propagates.
    """
    config = task.config
    population = ZonePopulation(config.population)
    workload = WorkloadModel(population, config.workload)
    authority = population.build_authority()
    servers: Dict[int, RecursiveResolver] = {
        index: RecursiveResolver(
            authority,
            LruDnsCache(config.cache_capacity, min_ttl=config.min_ttl,
                        negative_ttl=config.negative_ttl))
        for index in task.server_indices
    }
    n_servers = config.n_servers
    shard_set = frozenset(task.server_indices)
    days: List[Dict[str, np.ndarray]] = []
    for date in task.dates:
        apply_ttl_schedule(population, authority, date.year_fraction)
        events = workload.generate_day(
            date.day_index, year_fraction=date.year_fraction,
            n_events=task.n_events)
        day_start = date.day_index * SECONDS_PER_DAY
        builder = ShardColumnsBuilder()
        add_response = builder.add_response
        for seq, event in enumerate(events):
            server_index = event.client_id % n_servers
            if server_index not in shard_set:
                continue
            server = servers[server_index]
            now = day_start + event.timestamp
            result = server.resolve(event.question, now)
            # Mirror RdnsCluster.query + PassiveDnsCollector exactly:
            # the above-tap fires first on a miss, then the below-tap.
            if not result.cache_hit:
                add_response("above", now, seq, None, result.response)
            add_response("below", now, seq, event.client_id,
                         result.response)
        days.append(builder.finalize())
    stats = {
        index: _ServerStats(cache=server.cache.stats,
                            upstream_queries=server.upstream_queries,
                            answered_queries=server.answered_queries)
        for index, server in servers.items()
    }
    if task.transport == "inline":
        return _ShardResult(columns_ref=None, inline_days=days,
                            stats=stats)
    payload: Dict[str, np.ndarray] = {}
    for day_index, columns in enumerate(days):
        prefix = _day_prefix(day_index)
        for key, array in columns.items():
            payload[prefix + key] = array
    channel = ColumnChannel(task.transport, spill_root=task.spill_root)
    try:
        ref = channel.publish(task.shm_name or "shard", payload)
    except BaseException:
        channel.release_published()
        raise
    return _ShardResult(columns_ref=ref, inline_days=None, stats=stats)


def default_worker_count(n_servers: int) -> int:
    """Workers to use when unspecified: one per *schedulable* core
    (cgroup/affinity aware — ``os.cpu_count`` over-subscribes
    constrained CI boxes), capped by shards."""
    return max(1, min(n_servers, available_cpu_count()))


class ShardedTraceSimulator:
    """Parallel drop-in for :class:`~repro.traffic.simulate.TraceSimulator`
    over a contiguous run of days.

    One :meth:`run_days` call simulates one contiguous window from cold
    caches — exactly what a freshly constructed serial simulator would
    produce for the same dates.  Server ``i`` is assigned to worker
    ``i % n_workers``, so any worker count from 1 to ``n_servers``
    yields the identical merged output.  Returned datasets are
    :class:`~repro.pdns.columnar.ColumnarFpDnsDataset` views: the
    digest is already built (the merge produced it) and per-entry
    lists materialise only if a legacy consumer reads them.

    ``ipc`` selects the worker transport: ``auto`` (default) resolves
    to shared memory where available, else artifact spill; a
    single-shard run stays fully in-process either way.
    """

    def __init__(self, config: Optional[SimulatorConfig] = None,
                 n_workers: Optional[int] = None,
                 ipc: str = IPC_AUTO) -> None:
        self.config = config or SimulatorConfig()
        if n_workers is None:
            n_workers = default_worker_count(self.config.n_servers)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if ipc not in IPC_MODES:
            raise ValueError(f"ipc mode {ipc!r} not in {IPC_MODES}")
        self.n_workers = min(n_workers, self.config.n_servers)
        self.ipc = ipc
        self._population: Optional[ZonePopulation] = None
        self._stats: Optional[Dict[int, _ServerStats]] = None
        self._last_ipc: Optional[IpcStats] = None

    # -- shard planning -----------------------------------------------------

    def _shards(self) -> List[Tuple[int, ...]]:
        shards: List[List[int]] = [[] for _ in range(self.n_workers)]
        for index in range(self.config.n_servers):
            shards[index % self.n_workers].append(index)
        return [tuple(shard) for shard in shards if shard]

    # -- running ------------------------------------------------------------

    def run_days(self, dates: Sequence[MeasurementDate],
                 n_events: Optional[int] = None) -> List[FpDnsDataset]:
        """Simulate ``dates`` (chronological) and return one dataset each."""
        shards = self._shards()
        if len(shards) == 1:
            results = [_simulate_shard(_ShardTask(
                config=self.config, server_indices=shards[0],
                dates=tuple(dates), n_events=n_events,
                transport="inline"))]
            self._last_ipc = IpcStats(mode="inline", payload_bytes=0,
                                      segments=0)
            return self._finish(dates, results)
        mode = resolve_ipc_mode(self.ipc)
        spill_dir: Optional[tempfile.TemporaryDirectory] = None
        spill_root: Optional[str] = None
        if mode != IPC_SHM:
            spill_dir = tempfile.TemporaryDirectory(
                prefix="repro-sim-spill-")
            spill_root = spill_dir.name
        run_tag = f"repro-sim-{os.getpid()}"
        tasks = [
            _ShardTask(config=self.config, server_indices=shard,
                       dates=tuple(dates), n_events=n_events,
                       transport=mode,
                       shm_name=f"{run_tag}-s{shard_index}",
                       spill_root=spill_root)
            for shard_index, shard in enumerate(shards)
        ]
        try:
            context = multiprocessing.get_context()
            with context.Pool(processes=len(tasks)) as pool:
                results = pool.map(_simulate_shard, tasks)
            self._last_ipc = IpcStats(
                mode=mode,
                payload_bytes=sum(result.columns_ref.nbytes
                                  for result in results
                                  if result.columns_ref is not None),
                segments=sum(1 for result in results
                             if result.columns_ref is not None))
            return self._finish(dates, results)
        finally:
            # Release every possible segment by its parent-chosen name:
            # covers worker crashes after publication (the ref never
            # reached us) as well as the normal path.  release() is
            # idempotent, so double-frees are no-ops.
            for task in tasks:
                if task.shm_name is not None and mode == IPC_SHM:
                    ColumnsRef(kind=IPC_SHM, token=task.shm_name,
                               nbytes=0).release()
            if spill_dir is not None:
                spill_dir.cleanup()

    def _finish(self, dates: Sequence[MeasurementDate],
                results: List[_ShardResult]) -> List[FpDnsDataset]:
        """Merge shard columns day by day and collect server stats."""
        stats: Dict[int, _ServerStats] = {}
        for result in results:
            stats.update(result.stats)
        self._stats = stats
        channel = ColumnChannel(IPC_SHM)
        shard_days: List[List[Dict[str, np.ndarray]]] = []
        for result in results:
            if result.inline_days is not None:
                shard_days.append(result.inline_days)
                continue
            assert result.columns_ref is not None
            # fetch() copies the columns out and unmaps immediately —
            # the merge below must not hold views into a segment the
            # run_days finally block is about to unlink.
            payload = channel.fetch(result.columns_ref)
            days: List[Dict[str, np.ndarray]] = []
            for day_index in range(len(dates)):
                prefix = _day_prefix(day_index)
                days.append({key[len(prefix):]: array
                             for key, array in payload.items()
                             if key.startswith(prefix)})
            shard_days.append(days)
        datasets: List[FpDnsDataset] = []
        for day_index, date in enumerate(dates):
            merged = merge_shard_columns(
                date.label,
                [days[day_index] for days in shard_days])
            datasets.append(ColumnarFpDnsDataset(
                day=date.label, digest=merged.digest,
                xrdata=(merged.below_xrdata_ids,
                        merged.above_xrdata_ids,
                        merged.xrdata_strings),
                content_key=None))
        return datasets

    @property
    def last_ipc(self) -> Optional[IpcStats]:
        """Payload accounting for the most recent :meth:`run_days`."""
        return self._last_ipc

    def total_stats(self) -> dict:
        """Aggregate cache statistics, matching
        :meth:`repro.dns.resolver.RdnsCluster.total_stats` for the same
        simulated window."""
        if self._stats is None:
            raise RuntimeError("total_stats() requires a prior run_days()")
        totals = {"hits": 0, "misses": 0, "evictions": 0, "evicted_live": 0,
                  "inserts": 0, "upstream_queries": 0, "answered_queries": 0}
        for server_stats in self._stats.values():
            cache = server_stats.cache
            totals["hits"] += cache.hits
            totals["misses"] += cache.misses
            totals["evictions"] += cache.evictions
            totals["evicted_live"] += cache.evicted_live
            totals["inserts"] += cache.inserts
            totals["upstream_queries"] += server_stats.upstream_queries
            totals["answered_queries"] += server_stats.answered_queries
        return totals

    # -- ground truth -------------------------------------------------------

    @property
    def population(self) -> ZonePopulation:
        """The zone population (built lazily; identical to the workers')."""
        if self._population is None:
            self._population = ZonePopulation(self.config.population)
        return self._population

    def disposable_truth(self) -> set:
        return self.population.disposable_truth()

    def labeled_zones(self) -> List[LabeledZone]:
        return self.population.labeled_zones()
