"""Synthetic ISP workload: the substitute for the paper's Comcast traces."""

from repro.traffic.artifacts import FpDnsArtifactCache, artifact_key
from repro.traffic.clients import ClientPopulation
from repro.traffic.diurnal import SECONDS_PER_DAY, DiurnalProfile
from repro.traffic.parallel import ShardedTraceSimulator, default_worker_count
from repro.traffic.generators import (AvHashNameGenerator,
                                      CdnShardNameGenerator,
                                      DisposableNameGenerator,
                                      DnsblNameGenerator,
                                      MeasurementNameGenerator,
                                      TelemetryNameGenerator,
                                      TrackingNameGenerator)
from repro.traffic.population import (DisposableService, PopulationConfig,
                                      PopularSite, ZonePopulation)
from repro.traffic.scenarios import SCENARIOS, scenario, scenario_names
from repro.traffic.simulate import (PAPER_DATES, RPDNS_WINDOW_DATES,
                                    MeasurementDate, SimulatorConfig,
                                    TraceSimulator)
from repro.traffic.workload import QueryEvent, WorkloadConfig, WorkloadModel
from repro.traffic.zipf import ZipfSampler

__all__ = [
    "FpDnsArtifactCache", "artifact_key",
    "ClientPopulation",
    "SECONDS_PER_DAY", "DiurnalProfile",
    "ShardedTraceSimulator", "default_worker_count",
    "AvHashNameGenerator", "CdnShardNameGenerator",
    "DisposableNameGenerator", "DnsblNameGenerator",
    "MeasurementNameGenerator", "TelemetryNameGenerator",
    "TrackingNameGenerator",
    "DisposableService", "PopulationConfig", "PopularSite", "ZonePopulation",
    "SCENARIOS", "scenario", "scenario_names",
    "PAPER_DATES", "RPDNS_WINDOW_DATES", "MeasurementDate",
    "SimulatorConfig", "TraceSimulator",
    "QueryEvent", "WorkloadConfig", "WorkloadModel",
    "ZipfSampler",
]
