"""Figure 7 — CHR distributions of disposable vs non-disposable zones."""

from conftest import run_and_render
from repro.experiments.figures import run_fig07_chr_labeled


def test_bench_fig07_chr_labeled(benchmark, medium_context):
    result = run_and_render(benchmark, run_fig07_chr_labeled,
                            medium_context)
    # Paper: ~90% of disposable CHR samples are zero; non-disposable
    # zones keep a "natural" spread with high-CHR mass.
    assert result.split.disposable_zero_fraction > 0.85
    assert result.split.non_disposable_fraction_above(0.58) > 0.1
