"""Figure 14 — TTL histogram of disposable domains, Feb vs Dec."""

from conftest import run_and_render
from repro.experiments.figures import run_fig14_ttl


def test_bench_fig14_ttl(benchmark, medium_context):
    result = run_and_render(benchmark, run_fig14_ttl, medium_context)
    # Paper: February's mass sits at TTL=1s (28% of disposable
    # domains); by December operators moved to 300s.
    assert result.february.mode() == 1
    assert result.december.mode() == 300
    assert result.december.total > result.february.total
