"""Table I — disposable RRs in the low-lookup-volume tail."""

from conftest import run_and_render
from repro.experiments.tables import run_table1_lookup_tail


def test_bench_table1_lookup_tail(benchmark, medium_context):
    result = run_and_render(benchmark, run_table1_lookup_tail,
                            medium_context)
    # Paper: tail 90-94% of RRs; disposable share of tail grows
    # 28->57%; 96-98% of disposable RRs live in the tail.
    for row in result.rows:
        assert row.tail_fraction > 0.8
        assert row.disposable_in_tail_fraction > 0.9
    series = result.disposable_share_series()
    assert series[-1] > series[0]
