"""Extension — cumulative zone discovery across the measurement year.

The paper's deployment "discovered 14,488 new disposable zones" over
11 months of daily runs.  This bench accumulates the daily miner
output across all 19 simulated days (6 spot dates + the 13-day
window) into a ZoneTracker and prints the discovery curve, zone/2LD
totals, and persistence split.
"""

from repro.core.tracking import ZoneTracker
from repro.experiments.report import format_table
from repro.traffic.simulate import PAPER_DATES, RPDNS_WINDOW_DATES


def build_tracker(ctx):
    dates = sorted({d.label: d for d in
                    [*PAPER_DATES, *RPDNS_WINDOW_DATES]}.values(),
                   key=lambda d: d.day_index)
    tracker = ZoneTracker()
    for date in dates:
        tracker.ingest(ctx.mining_result(date))
    return tracker


def test_bench_ext_discovery(benchmark, medium_context):
    build_tracker(medium_context)          # warm the mining caches
    tracker = benchmark.pedantic(build_tracker, args=(medium_context,),
                                 rounds=2, iterations=1)
    print()
    print(format_table(["day", "cumulative zones"],
                       tracker.discovery_curve()))
    print(f"total zones: {tracker.total_zones()}  "
          f"2LDs: {tracker.total_2lds()}  "
          f"persistent (>=5 days): "
          f"{len(tracker.persistent_zones(min_days=5))}  "
          f"one-day wonders: {len(tracker.one_day_wonders())}")
    # Shape: inventory grows then saturates (the synthetic Internet is
    # finite); stable services persist across many days.
    curve = [count for _, count in tracker.discovery_curve()]
    assert curve == sorted(curve)
    assert tracker.total_zones() >= 20
    assert len(tracker.persistent_zones(min_days=5)) >= 10
    assert tracker.total_2lds() <= tracker.total_zones()
