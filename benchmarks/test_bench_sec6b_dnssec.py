"""Section VI-B — DNSSEC validation cost and the wildcard mitigation."""

from conftest import run_and_render
from repro.experiments.impact_runs import run_sec6b_dnssec


def test_bench_sec6b_dnssec(benchmark, medium_context):
    result = run_and_render(benchmark, run_sec6b_dnssec, medium_context,
                            n_events=30_000)
    # Paper: each disposable query forces a never-reused validation;
    # wildcard signing collapses them.
    study = result.study
    assert study.wildcard_savings() > 0.2
    per_name = study.scenarios["per-name"]
    wildcard = study.scenarios["wildcard"]
    assert wildcard.disposable_validations < per_name.disposable_validations * 0.1
