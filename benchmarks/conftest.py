"""Shared benchmark fixtures.

All figure/table benches reuse one MEDIUM-profile experiment context:
the simulated year (the expensive part) is built once per session, and
each bench times the *analysis* that regenerates its figure, after a
warm-up call that populates the context caches.  Rendered paper-style
output is printed (run with ``-s`` to see it inline; it is also what
EXPERIMENTS.md records).

The simulation itself honours two opt-in environment knobs (both
byte-identical to the default; see docs/PERFORMANCE.md):

* ``REPRO_SIM_WORKERS=N`` — shard the calendar across N processes.
* ``REPRO_ARTIFACT_CACHE=DIR`` — persist/load simulated days in DIR,
  so a second bench session skips the simulation entirely.
"""

from __future__ import annotations

import pytest

from repro.experiments.context import MEDIUM, ExperimentContext, get_context


@pytest.fixture(scope="session")
def medium_context() -> ExperimentContext:
    return get_context(MEDIUM)


def run_and_render(benchmark, runner, ctx, *args, **kwargs):
    """Warm the context, benchmark the runner, print its rendering."""
    warm = runner(ctx, *args, **kwargs)   # populates caches
    result = benchmark.pedantic(runner, args=(ctx, *args), kwargs=kwargs,
                                rounds=3, iterations=1)
    print()
    print(result.render())
    return result
