"""Figure 12 — ROC curve of the LAD tree under 10-fold CV."""

from conftest import run_and_render
from repro.experiments.figures import run_fig12_roc


def test_bench_fig12_roc(benchmark, medium_context):
    result = run_and_render(benchmark, run_fig12_roc, medium_context)
    # Paper: theta=0.5 -> 97% TPR / 1% FPR; theta=0.9 -> 92.4% / 0.6%.
    assert result.tpr_at_05 > 0.9
    assert result.fpr_at_05 < 0.05
    assert result.fpr_at_09 <= result.fpr_at_05 + 1e-9
    assert result.auc > 0.95
