"""Figure 4 — cache-hit-rate distribution, one day and year-pooled."""

from conftest import run_and_render
from repro.experiments.figures import run_fig04_chr_distribution


def test_bench_fig04_chr_distribution(benchmark, medium_context):
    result = run_and_render(benchmark, run_fig04_chr_distribution,
                            medium_context)
    # Paper: the majority of CHR samples sit below 0.5 (58% on 11/10).
    assert result.below_half_fraction > 0.5
    assert len(result.year_cdf) > len(result.day_cdf)
