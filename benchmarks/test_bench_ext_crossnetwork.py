"""Extension — cross-network comparison (the paper's future work).

Runs the full pipeline at two simulated vantage points with different
client bases and intersects the miner outputs: the real disposable
services survive the unanimity quorum, while vantage-point artifacts
(unpopular CDN content) fall out as locally disposable.
"""

from repro.core.classifier import LadTreeClassifier
from repro.core.crossnetwork import compare_networks
from repro.core.features import FeatureExtractor
from repro.core.hitrate import compute_hit_rates
from repro.core.labeling import build_training_set
from repro.core.miner import MinerConfig
from repro.core.ranking import DisposableZoneRanker, build_tree_for_day
from repro.experiments.report import format_percent, format_table
from repro.traffic.simulate import (MeasurementDate, PopulationConfig,
                                    SimulatorConfig, TraceSimulator,
                                    WorkloadConfig)


def mine_network(workload_seed: int):
    config = SimulatorConfig(
        cache_capacity=8_000,
        population=PopulationConfig(n_popular_sites=80,
                                    n_longtail_sites=1_500,
                                    n_extra_disposable=20,
                                    cdn_objects=4_000),
        workload=WorkloadConfig(events_per_day=15_000, n_clients=150,
                                seed=workload_seed))
    simulator = TraceSimulator(config)
    day = simulator.run_day(MeasurementDate("probe", 313, 0.9))
    hit_rates = compute_hit_rates(day)
    tree = build_tree_for_day(day)
    extractor = FeatureExtractor(tree, hit_rates)
    training = build_training_set(simulator.labeled_zones(), tree, extractor)
    classifier = LadTreeClassifier().fit(training.X, training.y)
    return DisposableZoneRanker(classifier,
                                MinerConfig()).run_day(day, hit_rates).groups


def test_bench_ext_crossnetwork(benchmark):
    report = benchmark.pedantic(
        lambda: compare_networks({"ispA": mine_network(11),
                                  "ispB": mine_network(22),
                                  "ispC": mine_network(33)}),
        rounds=1, iterations=1)
    print()
    rows = [(e.zone, e.depth, format_percent(e.support),
             ",".join(e.networks))
            for e in sorted(report.consensus,
                            key=lambda e: (-e.support, e.zone))[:20]]
    print(format_table(["zone", "depth", "support", "networks"], rows))
    global_zones = {zone for zone, _ in report.global_groups()}
    assert any("mcafee" in zone for zone in global_zones)
    assert len(report.global_groups()) >= 5
