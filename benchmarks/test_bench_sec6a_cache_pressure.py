"""Section VI-A — cache pressure from disposable churn."""

from conftest import run_and_render
from repro.experiments.impact_runs import run_sec6a_cache_pressure


def test_bench_sec6a_cache_pressure(benchmark, medium_context):
    capacities = [1_500, 6_000, 25_000]
    result = run_and_render(benchmark, run_sec6a_cache_pressure,
                            medium_context, capacities=capacities,
                            n_events=30_000)
    # Paper: disposable load prematurely evicts useful records; the
    # effect grows as the cache shrinks relative to the churn.
    degradations = result.degradation_series()
    assert degradations[0] >= degradations[-1] - 0.02
    assert all(d >= -0.01 for d in degradations)
