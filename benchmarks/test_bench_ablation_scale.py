"""Ablation — above/below traffic ratio vs event density.

The paper observes an order of magnitude less traffic above the
recursives than below, at ~200 queries per RR per day.  The simulator
runs at laptop density (~5 queries per RR); this bench sweeps
events_per_day and shows the ratio falling toward the paper's regime
as density grows — the justification for treating the Figure 2 gap as
a shape, not an absolute (DESIGN.md Section 5).
"""

from repro.experiments.report import format_table
from repro.traffic.population import PopulationConfig
from repro.traffic.simulate import (MeasurementDate, SimulatorConfig,
                                    TraceSimulator)
from repro.traffic.workload import WorkloadConfig


def ratio_at(events_per_day: int) -> float:
    config = SimulatorConfig(
        cache_capacity=25_000,
        population=PopulationConfig(n_popular_sites=150,
                                    n_longtail_sites=3_000,
                                    n_extra_disposable=24,
                                    cdn_objects=10_000),
        workload=WorkloadConfig(events_per_day=events_per_day,
                                n_clients=300))
    simulator = TraceSimulator(config)
    simulator.run_day(MeasurementDate("warm", 100, 0.5))
    day = simulator.run_day(MeasurementDate("probe", 101, 0.5))
    return day.above_volume() / day.below_volume()


def test_bench_ablation_scale(benchmark):
    scales = [8_000, 32_000, 96_000]
    ratios = benchmark.pedantic(
        lambda: [ratio_at(scale) for scale in scales],
        rounds=1, iterations=1)
    print()
    print(format_table(["events/day", "above/below ratio"],
                       [(s, f"{r:.3f}") for s, r in zip(scales, ratios)]))
    # Density up -> ratio down, toward the paper's order-of-magnitude gap.
    assert ratios[0] > ratios[-1]
    assert ratios[-1] < 0.6
