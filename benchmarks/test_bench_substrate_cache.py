"""Substrate microbenchmark — LRU cache ops throughput."""

import numpy as np

from repro.dns.cache import LruDnsCache
from repro.dns.message import Question, RCode, ResourceRecord, Response, RRType


def churn(cache: LruDnsCache, names, now0: float = 0.0) -> int:
    hits = 0
    for i, name in enumerate(names):
        now = now0 + i * 0.01
        question = Question(name)
        if cache.lookup(question, now) is None:
            response = Response(question, RCode.NOERROR,
                                [ResourceRecord(name, RRType.A, 300, "1.1.1.1")])
            cache.insert(response, now)
        else:
            hits += 1
    return hits


def test_bench_substrate_cache(benchmark):
    rng = np.random.default_rng(0)
    names = [f"n{int(i)}.bench.com" for i in rng.zipf(1.3, 20_000) % 5_000]

    def run():
        cache = LruDnsCache(2_000)
        return churn(cache, names)

    hits = benchmark(run)
    assert hits > 0
