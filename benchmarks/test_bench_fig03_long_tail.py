"""Figure 3 — lookup-volume distribution and DHR CDF long tails."""

from conftest import run_and_render
from repro.experiments.figures import run_fig03_long_tail


def test_bench_fig03_long_tail(benchmark, medium_context):
    result = run_and_render(benchmark, run_fig03_long_tail, medium_context)
    # Paper: >90% of RRs get fewer than 10 lookups; ~89% zero DHR.
    assert result.low_volume_fraction > 0.85
    assert result.zero_dhr_fraction > 0.6
