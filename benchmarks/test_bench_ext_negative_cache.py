"""Extension — RFC 2308 negative caching vs upstream NXDOMAIN load.

The paper attributes its 40%-NXDOMAIN-above anomaly to resolvers that
ignore RFC 2308; this bench quantifies how much upstream NXDOMAIN
traffic honoring the negative cache removes.
"""

from repro.experiments.report import format_percent, format_table
from repro.impact.negative_cache import run_negative_cache_study
from repro.traffic.diurnal import SECONDS_PER_DAY


def test_bench_ext_negative_cache(benchmark, medium_context):
    simulator = medium_context.simulator
    events = simulator.workload.generate_day(430, year_fraction=0.95,
                                             n_events=30_000)

    study = benchmark.pedantic(
        run_negative_cache_study,
        args=(simulator.authority, events),
        kwargs={"cache_capacity": medium_context.profile.cache_capacity,
                "day_start": 430 * SECONDS_PER_DAY},
        rounds=2, iterations=1)
    print()
    rows = [
        (s.label, s.upstream_total, s.upstream_nxdomain,
         format_percent(s.nxdomain_share_above), s.negative_cache_hits)
        for s in (study.without_rfc2308, study.with_rfc2308)
    ]
    print(format_table(["policy", "upstream", "upstream NXDOMAIN",
                        "NX share above", "negative-cache hits"], rows))
    assert study.upstream_nxdomain_saved > 0
    assert (study.with_rfc2308.nxdomain_share_above
            < study.without_rfc2308.nxdomain_share_above)
