"""Figure 13 — growth of disposable zones across the year."""

from conftest import run_and_render
from repro.experiments.figures import run_fig13_growth


def test_bench_fig13_growth(benchmark, medium_context):
    result = run_and_render(benchmark, run_fig13_growth, medium_context)
    # Paper: queried 23.1->27.6%, resolved 27.6->37.2%, RRs 38.3->65.5%.
    series = result.series
    assert series.queried_growth() > 0.0
    assert series.resolved_growth() > 0.0
    assert series.rr_growth() > 0.0
    assert series.is_monotonic_increasing("resolved_fraction", slack=0.03)
    assert 0.1 < series.first.queried_fraction < 0.45
