"""Extension — fpDNS dataset byte growth (Section III-A).

The paper's compressed fpDNS dataset grew from ~60 GB/day (February)
to ~145 GB/day (December 2011).  This bench prices simulated February
and December days in wire-format bytes and attributes the growth to
the rising share of (long-named) disposable records.
"""

from repro.experiments.report import format_percent, format_table
from repro.pdns.sizing import estimate_dataset_size
from repro.traffic.simulate import PAPER_DATES


def test_bench_ext_dataset_size(benchmark, medium_context):
    feb_date, dec_date = PAPER_DATES[0], PAPER_DATES[-1]
    feb = medium_context.dataset(feb_date)
    dec = medium_context.dataset(dec_date)
    groups_feb = medium_context.mined_groups(feb_date)
    groups_dec = medium_context.mined_groups(dec_date)

    def price():
        return (estimate_dataset_size(feb, disposable_groups=groups_feb),
                estimate_dataset_size(dec, disposable_groups=groups_dec))

    feb_report, dec_report = benchmark(price)
    print()
    rows = [
        (report.day, f"{report.raw_bytes / 1e6:.1f} MB",
         f"{report.compressed_bytes / 1e6:.1f} MB",
         f"{report.mean_entry_bytes:.1f} B",
         format_percent(report.disposable_byte_share))
        for report in (feb_report, dec_report)
    ]
    print(format_table(["day", "raw", "compressed", "bytes/entry",
                        "disposable byte share"], rows))
    growth = dec_report.raw_bytes / feb_report.raw_bytes
    print(f"Feb->Dec byte growth: {growth:.2f}x (paper: ~2.4x)")
    # Shape: December costs more per entry and in total; disposable
    # records account for a disproportionate byte share.
    assert dec_report.mean_entry_bytes > feb_report.mean_entry_bytes
    assert growth > 1.05
    assert (dec_report.disposable_byte_share
            > feb_report.disposable_byte_share)
