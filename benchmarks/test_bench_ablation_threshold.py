"""Ablation — miner threshold sweep around the paper's theta=0.9."""

from conftest import run_and_render
from repro.experiments.ablations import run_threshold_sweep


def test_bench_ablation_threshold(benchmark, medium_context):
    result = run_and_render(benchmark, run_threshold_sweep, medium_context,
                            thresholds=(0.5, 0.7, 0.9, 0.99))
    theta_09 = next(row for row in result.rows if row[0] == 0.9)
    assert theta_09[1] > 0.8  # precision
    assert theta_09[2] > 0.6  # recall
