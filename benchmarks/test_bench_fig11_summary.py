"""Figure 11 — the measurement-results summary table."""

from conftest import run_and_render
from repro.experiments.tables import run_fig11_summary


def test_bench_fig11_summary(benchmark, medium_context):
    result = run_and_render(benchmark, run_fig11_summary, medium_context)
    # Paper: 97% TP / 1% FP; growth in all three population shares.
    assert result.tpr_at_05 > 0.9
    assert result.fpr_at_05 < 0.05
    assert result.queried_last > result.queried_first
    assert result.resolved_last > result.resolved_first
    assert result.rr_last > result.rr_first
