"""Section VI-C — passive-DNS storage growth and wildcard filtering."""

from conftest import run_and_render
from repro.experiments.impact_runs import run_sec6c_pdns_storage


def test_bench_sec6c_pdns_storage(benchmark, medium_context):
    result = run_and_render(benchmark, run_sec6c_pdns_storage,
                            medium_context)
    # Paper: 88% of stored unique RRs disposable; wildcard rows shrink
    # the disposable portion to ~0.7%.
    assert result.result.disposable_fraction > 0.4
    assert result.result.reduction_ratio < 0.7
