"""Figure 5 — deduplicated new RRs per day over the 13-day window."""

from conftest import run_and_render
from repro.experiments.figures import run_fig05_new_rrs


def test_bench_fig05_new_rrs(benchmark, medium_context):
    result = run_and_render(benchmark, run_fig05_new_rrs, medium_context)
    # Paper: new RRs per day decline (~30%) as the database warms;
    # Google's series does not collapse.
    assert len(result.report.days) == 13
    assert result.report.overall_decline() > 0.05
    days = result.report.days
    assert days[-1].new_google > 0.5 * days[0].new_google
