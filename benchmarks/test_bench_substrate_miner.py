"""Substrate microbenchmark — Algorithm 1 mining throughput."""

from conftest import run_and_render
from repro.core.features import FeatureExtractor
from repro.core.miner import DisposableZoneMiner, MinerConfig
from repro.core.ranking import build_tree_for_day
from repro.traffic.simulate import PAPER_DATES


def test_bench_substrate_miner(benchmark, medium_context):
    date = PAPER_DATES[-1]
    dataset = medium_context.dataset(date)
    hit_rates = medium_context.hit_rates(date)
    classifier = medium_context.classifier()

    def mine_full_day():
        tree = build_tree_for_day(dataset)
        extractor = FeatureExtractor(tree, hit_rates)
        miner = DisposableZoneMiner(classifier, MinerConfig())
        return miner.mine(tree, extractor)

    findings = benchmark(mine_full_day)
    assert len(findings) > 10
