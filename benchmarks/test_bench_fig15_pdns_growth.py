"""Figure 15 — new RRs over 13 days split by disposability."""

from conftest import run_and_render
from repro.experiments.figures import run_fig15_pdns_growth


def test_bench_fig15_pdns_growth(benchmark, medium_context):
    result = run_and_render(benchmark, run_fig15_pdns_growth,
                            medium_context)
    # Paper: 88% of unique RRs disposable after the window; the
    # non-disposable new-RR series collapses while disposable holds.
    assert result.report.disposable_fraction > 0.4
    days = result.report.days
    nd_drop = 1 - days[-1].new_non_disposable / days[0].new_non_disposable
    d_drop = 1 - days[-1].new_disposable / max(days[0].new_disposable, 1)
    assert nd_drop > d_drop
