"""Table II — disposable RRs in the zero-domain-hit-rate tail."""

from conftest import run_and_render
from repro.experiments.tables import run_table2_dhr_tail


def test_bench_table2_dhr_tail(benchmark, medium_context):
    result = run_and_render(benchmark, run_table2_dhr_tail, medium_context)
    # Paper: tail 89-94%; disposable share grows; ~96% of disposable
    # RRs have zero DHR.
    for row in result.rows:
        assert row.tail_fraction > 0.55
        assert row.disposable_in_tail_fraction > 0.85
    series = result.disposable_share_series()
    assert series[-1] > series[0]
