"""Extension — 'queried by a handful of clients' (Section I).

Measures distinct querying clients per resolved name, split by the
miner's disposable classification: popular names spread across the
subscriber base, disposable names stay with their emitting hosts.
"""

from repro.analysis.clients import clients_per_name
from repro.experiments.report import format_kv, format_percent
from repro.traffic.simulate import PAPER_DATES


def test_bench_ext_client_spread(benchmark, medium_context):
    date = PAPER_DATES[-1]
    dataset = medium_context.dataset(date)
    groups = medium_context.mined_groups(date)

    report = benchmark(clients_per_name, dataset, groups)
    print()
    print(format_kv([
        ("disposable median clients/name", report.disposable_median),
        ("non-disposable median clients/name", report.other_median),
        ("disposable names with <= 3 clients",
         format_percent(report.disposable_handful_fraction(3))),
        ("mean spread ratio (non-disposable / disposable)",
         f"{report.spread_ratio():.1f}x"),
    ]))
    assert report.disposable_handful_fraction(3) > 0.9
    assert report.spread_ratio() > 1.5
    assert report.disposable_median <= report.other_median
