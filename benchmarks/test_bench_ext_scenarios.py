"""Extension — scenario comparison on the calibration scorecard.

Runs one probe day per named scenario and prints each scenario's
headline statistics side by side: the counterfactuals behind the
paper's claims (frozen growth, doubled disposable load, RFC 2308
compliance) at a glance.
"""

from dataclasses import replace

from repro.analysis.summary import build_daily_report
from repro.experiments.report import format_percent, format_table
from repro.traffic.scenarios import scenario, scenario_names
from repro.traffic.simulate import MeasurementDate, TraceSimulator


def probe(name: str):
    config = scenario(name, events_per_day=15_000, n_clients=200)
    config.population = replace(config.population, n_popular_sites=80,
                                n_longtail_sites=1_500,
                                n_extra_disposable=20, cdn_objects=4_000)
    simulator = TraceSimulator(config)
    simulator.run_day(MeasurementDate("warm", 330, 0.9))
    day = simulator.run_day(MeasurementDate("probe", 331, 0.9))
    report = build_daily_report(day,
                                disposable_groups=
                                simulator.disposable_truth())
    return name, report


def test_bench_ext_scenarios(benchmark):
    reports = benchmark.pedantic(
        lambda: [probe(name) for name in scenario_names()],
        rounds=1, iterations=1)
    rows = []
    by_name = {}
    for name, report in reports:
        by_name[name] = report
        rows.append((name,
                     f"{report.volumes.above_below_ratio:.2f}",
                     format_percent(report.volumes.nxdomain_share_above),
                     format_percent(report.disposable_resolved_fraction),
                     format_percent(report.zero_dhr_fraction)))
    print()
    print(format_table(["scenario", "above/below", "NX above",
                        "disposable resolved", "zero-DHR"], rows))
    # Headline contrasts hold:
    assert (by_name["disposable_heavy"].disposable_resolved_fraction
            > by_name["paper_year"].disposable_resolved_fraction)
    assert (by_name["rfc2308_compliant"].volumes.nxdomain_share_above
            < by_name["paper_year"].volumes.nxdomain_share_above)
