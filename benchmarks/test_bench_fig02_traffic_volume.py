"""Figure 2 — RR volume above/below the RDNS cluster over six days."""

from conftest import run_and_render
from repro.experiments.figures import run_fig02_traffic_volume


def test_bench_fig02_traffic_volume(benchmark, medium_context):
    result = run_and_render(benchmark, run_fig02_traffic_volume,
                            medium_context)
    # Paper shape: less traffic above than below; NXDOMAIN is a much
    # larger share of the upstream stream; clear diurnal swing.
    assert result.mean_above_below_ratio < 0.75
    assert (result.mean_nxdomain_share_above
            > 1.5 * result.mean_nxdomain_share_below)
    assert result.diurnal_peak_to_trough() > 2.0
