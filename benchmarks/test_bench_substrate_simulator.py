"""Substrate microbenchmark — end-to-end simulated-day throughput."""

from repro.traffic.population import PopulationConfig
from repro.traffic.simulate import (MeasurementDate, SimulatorConfig,
                                    TraceSimulator)
from repro.traffic.workload import WorkloadConfig


def test_bench_substrate_simulator(benchmark):
    config = SimulatorConfig(
        cache_capacity=8_000,
        population=PopulationConfig(n_popular_sites=80,
                                    n_longtail_sites=1_500,
                                    n_extra_disposable=20,
                                    cdn_objects=4_000),
        workload=WorkloadConfig(events_per_day=15_000, n_clients=200))
    simulator = TraceSimulator(config)
    counter = {"day": 0}

    def run_one_day():
        counter["day"] += 1
        date = MeasurementDate(f"bench-{counter['day']}",
                               100 + counter["day"], 0.5)
        return simulator.run_day(date)

    dataset = benchmark(run_one_day)
    assert dataset.below_volume() >= 15_000
