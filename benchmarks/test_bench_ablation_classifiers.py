"""Ablation — the Section V-C model-selection comparison."""

from conftest import run_and_render
from repro.experiments.ablations import run_classifier_comparison


def test_bench_ablation_classifiers(benchmark, medium_context):
    result = run_and_render(benchmark, run_classifier_comparison,
                            medium_context, n_folds=10)
    # Every candidate learns the task; the LAD tree is competitive
    # with the best (the paper picked it).
    for name, metrics in result.summary.items():
        assert metrics["auc"] > 0.8, name
    lad = result.summary["lad-tree"]["auc"]
    best = result.summary[result.best_model()]["auc"]
    assert lad >= best - 0.05
