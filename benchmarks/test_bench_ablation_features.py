"""Ablation — tree-structure vs cache-hit-rate feature families."""

from conftest import run_and_render
from repro.experiments.ablations import run_feature_ablation


def test_bench_ablation_features(benchmark, medium_context):
    result = run_and_render(benchmark, run_feature_ablation,
                            medium_context, n_folds=10)
    both = result.aucs["both families"]
    assert both >= result.aucs["tree-structure only"] - 0.05
    assert both >= result.aucs["cache-hit-rate only"] - 0.05
    assert result.aucs["cache-hit-rate only"] > 0.8
