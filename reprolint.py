"""Repo-root shim so ``python -m reprolint src tools`` works anywhere
the repository root is on ``sys.path`` (including a plain checkout).

The real implementation lives in :mod:`tools.reprolint`; this module
only forwards to its CLI.
"""

import sys

from tools.reprolint.cli import main

if __name__ == "__main__":
    sys.exit(main())
